//! The self-tuning event queue: heap below, calendar above.
//!
//! The hold-model benches (`event_queue` in `cas-bench`) show a stable
//! crossover: the binary heap wins below a few thousand pending events
//! (tight code, no tuning), the calendar queue wins past ~10⁴ (amortised
//! O(1) vs O(log n)) — *provided* its timestamps spread across buckets.
//! Grid experiments sit on both sides of that line depending on scale
//! (4-server paper runs vs 1k-server campaigns), and a single run can
//! cross it as a burst arrives and drains.
//!
//! [`AdaptiveQueue`] therefore starts on the heap and migrates between
//! backends at runtime:
//!
//! * **heap → calendar** when the pending count stays above
//!   [`TO_CALENDAR_LEN`];
//! * **calendar → heap** when the count falls below [`TO_HEAP_LEN`]
//!   (hysteresis: the two thresholds are 4× apart so a queue oscillating
//!   around one size does not thrash), or when the measured bucket
//!   occupancy degenerates — the fullest day bucket holding more than
//!   1/[`CLUSTER_FRACTION`] of all events means timestamps are clustering
//!   into few days and the calendar has decayed into a sorted list. A
//!   degeneracy fallback also *bans* the calendar until the queue drains
//!   below the low-water mark, so one clustered burst cannot ping-pong the
//!   backend.
//!
//! A migration drains the source, sorts by `(time, seq)` and re-inserts
//! with the **original sequence numbers** preserved, so FIFO stability at
//! equal timestamps spans migrations: the differential proptest below
//! drives heap, calendar and adaptive queues through one interleaving
//! (including boundary-exact timestamps) and requires identical pop
//! sequences from all three.

use crate::event::{EventEntry, EventQueue, HeapQueue};
use crate::CalendarQueue;
use crate::SimTime;

/// Pending-event count above which the heap migrates to the calendar.
pub const TO_CALENDAR_LEN: usize = 8192;

/// Pending-event count below which the calendar migrates back to the heap.
pub const TO_HEAP_LEN: usize = 2048;

/// Occupancy degeneracy trigger: migrate calendar → heap when the fullest
/// bucket holds more than `len / CLUSTER_FRACTION` events.
pub const CLUSTER_FRACTION: usize = 8;

/// How many queue operations pass between (linear-cost) occupancy probes.
const OCCUPANCY_CHECK_INTERVAL: u32 = 1024;

#[derive(Debug, Clone)]
enum Backend<E> {
    Heap(HeapQueue<E>),
    Calendar(CalendarQueue<E>),
}

/// An [`EventQueue`] that picks its backend by live workload shape.
#[derive(Debug, Clone)]
pub struct AdaptiveQueue<E> {
    backend: Backend<E>,
    /// The queue owns the sequence counter so stamps survive migrations.
    next_seq: u64,
    /// Migration thresholds (overridable for tests).
    to_calendar_len: usize,
    to_heap_len: usize,
    /// Operations since the last occupancy probe.
    ops_since_probe: u32,
    /// Set when a degenerate-occupancy fallback fired: the pending count
    /// alone says "calendar" but the timestamp distribution says "heap".
    /// Cleared once the queue drains below the low-water mark (regime
    /// change), so a single clustered burst cannot cause ping-ponging.
    calendar_banned: bool,
    migrations: u64,
}

impl<E> Default for AdaptiveQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> AdaptiveQueue<E> {
    /// An empty queue, starting on the heap backend.
    pub fn new() -> Self {
        Self::with_thresholds(TO_CALENDAR_LEN, TO_HEAP_LEN)
    }

    /// An empty queue with custom migration thresholds (`to_calendar_len`
    /// must be at least `2 * to_heap_len` to preserve the hysteresis gap).
    pub fn with_thresholds(to_calendar_len: usize, to_heap_len: usize) -> Self {
        assert!(
            to_calendar_len >= to_heap_len.saturating_mul(2),
            "hysteresis gap required: {to_calendar_len} < 2 * {to_heap_len}"
        );
        AdaptiveQueue {
            backend: Backend::Heap(HeapQueue::new()),
            next_seq: 0,
            to_calendar_len,
            to_heap_len,
            ops_since_probe: 0,
            calendar_banned: false,
            migrations: 0,
        }
    }

    /// `true` while the calendar backend is active.
    pub fn is_calendar(&self) -> bool {
        matches!(self.backend, Backend::Calendar(_))
    }

    /// The active backend's name (diagnostics).
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Heap(_) => "heap",
            Backend::Calendar(_) => "calendar",
        }
    }

    /// Number of backend migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Moves every entry into `target_calendar`-shaped backend, preserving
    /// `(time, seq)` order and the original stamps.
    fn migrate(&mut self, to_calendar: bool) {
        let mut entries = match &mut self.backend {
            Backend::Heap(q) => q.drain_entries(),
            Backend::Calendar(q) => q.drain_entries(),
        };
        entries.sort_by_key(|e| (e.at, e.seq));
        if to_calendar {
            let mut cal = CalendarQueue::new();
            for e in entries {
                cal.push_entry(e);
            }
            self.backend = Backend::Calendar(cal);
        } else {
            let mut heap = HeapQueue::new();
            for e in entries {
                heap.push_entry(e);
            }
            self.backend = Backend::Heap(heap);
        }
        self.migrations += 1;
        self.ops_since_probe = 0;
    }

    /// O(1) length-threshold check on every op; linear occupancy probe
    /// every [`OCCUPANCY_CHECK_INTERVAL`] ops.
    fn consider_migration(&mut self) {
        self.ops_since_probe += 1;
        match &self.backend {
            Backend::Heap(q) => {
                let len = EventQueue::<E>::len(q);
                if self.calendar_banned {
                    if len < self.to_heap_len {
                        self.calendar_banned = false;
                    }
                } else if len > self.to_calendar_len {
                    self.migrate(true);
                }
            }
            Backend::Calendar(q) => {
                if q.len() < self.to_heap_len {
                    self.migrate(false);
                } else if self.ops_since_probe >= OCCUPANCY_CHECK_INTERVAL {
                    self.ops_since_probe = 0;
                    let degenerate = q.n_buckets() >= CLUSTER_FRACTION
                        && q.max_bucket_len() * CLUSTER_FRACTION > q.len();
                    if degenerate {
                        self.calendar_banned = true;
                        self.migrate(false);
                    }
                }
            }
        }
    }
}

impl<E> EventQueue<E> for AdaptiveQueue<E> {
    fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = EventEntry { at, seq, event };
        match &mut self.backend {
            Backend::Heap(q) => q.push_entry(entry),
            Backend::Calendar(q) => q.push_entry(entry),
        }
        self.consider_migration();
        seq
    }

    fn pop(&mut self) -> Option<EventEntry<E>> {
        let popped = match &mut self.backend {
            Backend::Heap(q) => q.pop(),
            Backend::Calendar(q) => q.pop(),
        };
        if popped.is_some() {
            self.consider_migration();
        }
        popped
    }

    fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(q) => q.peek_time(),
            Backend::Calendar(q) => q.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(q) => EventQueue::<E>::len(q),
            Backend::Calendar(q) => q.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn starts_on_heap() {
        let q: AdaptiveQueue<u32> = AdaptiveQueue::new();
        assert!(!q.is_calendar());
        assert_eq!(q.backend_name(), "heap");
        assert_eq!(q.migrations(), 0);
    }

    /// Migration under load: fill past the high-water mark (→ calendar),
    /// drain below the low-water mark (→ heap), and require global
    /// ordering plus FIFO stability across both migrations.
    #[test]
    fn migrates_under_load_and_back() {
        let mut q = AdaptiveQueue::with_thresholds(256, 64);
        // Phase 1: fill well past the calendar threshold, with deliberate
        // timestamp ties straddling the migration point.
        for i in 0..1000u32 {
            q.push(t((i / 4) as f64), i);
        }
        assert!(q.is_calendar(), "high load must select the calendar");
        assert_eq!(q.migrations(), 1);
        // Phase 2: drain with interleaved pushes; ordering must hold
        // through the calendar → heap migration.
        let mut last: Option<(SimTime, u64)> = None;
        let mut popped = 0usize;
        let mut extra = 1000u32;
        while let Some(e) = q.pop() {
            if let Some((lt, ls)) = last {
                assert!(
                    (e.at, e.seq) > (lt, ls),
                    "ordering violated at pop {popped}: {:?} after {:?}",
                    (e.at, e.seq),
                    (lt, ls)
                );
            }
            last = Some((e.at, e.seq));
            if popped.is_multiple_of(7) && extra < 1100 {
                q.push(e.at + t(0.5), extra);
                extra += 1;
            }
            popped += 1;
        }
        assert_eq!(popped, 1100);
        assert!(!q.is_calendar(), "drained queue must fall back to the heap");
        assert!(q.migrations() >= 2);
    }

    #[test]
    fn clustered_timestamps_degrade_back_to_heap() {
        let mut q = AdaptiveQueue::with_thresholds(128, 32);
        // All events at the same instant: the calendar's buckets cannot
        // spread them, so the occupancy probe must bail back to the heap.
        for i in 0..5000u32 {
            q.push(t(1000.0), i);
        }
        assert!(
            !q.is_calendar(),
            "degenerate occupancy must trigger fallback (migrations={})",
            q.migrations()
        );
        // FIFO stability must have survived all migrations.
        for expect in 0..5000u32 {
            assert_eq!(q.pop().unwrap().event, expect);
        }
    }

    /// Hysteresis regression at the *default* thresholds: a workload
    /// oscillating its pending count around either water mark must not
    /// ping-pong backends. Crossing 8192 once selects the calendar;
    /// hundreds of oscillations straddling 8192 afterwards cause no
    /// further migration because the way back is gated at 2048 — and
    /// symmetrically, once below 2048 the heap holds until 8192 is
    /// exceeded again. Exactly two migrations over the whole scenario.
    #[test]
    fn hysteresis_bounds_migrations_under_oscillation() {
        let mut q: AdaptiveQueue<u32> = AdaptiveQueue::new();
        assert_eq!((q.to_calendar_len, q.to_heap_len), (8192, 2048));
        let mut clock = 0u32; // strictly increasing stamps: no clustering
        let mut push = |q: &mut AdaptiveQueue<u32>| {
            clock += 1;
            q.push(t(clock as f64), clock);
        };
        // Up through the high-water mark: one heap → calendar migration.
        for _ in 0..(TO_CALENDAR_LEN + 1) {
            push(&mut q);
        }
        assert!(q.is_calendar());
        assert_eq!(q.migrations(), 1);
        // Oscillate the length across 8192 five hundred times: the
        // calendar must hold (its exit is 2048, far below).
        for _ in 0..500 {
            q.pop().unwrap();
            q.pop().unwrap();
            push(&mut q);
            push(&mut q);
        }
        assert!(q.is_calendar(), "oscillation at 8192 must not migrate");
        assert_eq!(q.migrations(), 1);
        // Drain below the low-water mark: one calendar → heap migration.
        while EventQueue::<u32>::len(&q) >= TO_HEAP_LEN {
            q.pop().unwrap();
        }
        assert!(!q.is_calendar());
        assert_eq!(q.migrations(), 2);
        // Oscillate across 2048: the heap must hold (its exit is 8192).
        for _ in 0..500 {
            push(&mut q);
            push(&mut q);
            q.pop().unwrap();
            q.pop().unwrap();
        }
        assert!(!q.is_calendar(), "oscillation at 2048 must not migrate");
        assert_eq!(q.migrations(), 2, "exactly two migrations end to end");
    }

    #[test]
    fn stability_spans_migration() {
        let mut q = AdaptiveQueue::with_thresholds(64, 16);
        for i in 0..100u32 {
            q.push(t(5.0), i); // same time: FIFO by push order
        }
        assert!(q.migrations() > 0, "the 64-entry threshold must trip");
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Heap, calendar and adaptive backends produce identical pop
        /// sequences on any push/pop interleaving — including timestamps
        /// landing exactly on calendar bucket boundaries (the `raw / 100`
        /// grid reproduces PR 1's boundary-exact regression shape) and
        /// adaptive migrations mid-stream (tiny thresholds force them).
        #[test]
        fn three_backends_agree(ops in proptest::collection::vec(
            (proptest::bool::ANY, 0u32..10_000), 1..400)
        ) {
            let mut heap = HeapQueue::new();
            let mut cal = CalendarQueue::new();
            let mut ada = AdaptiveQueue::with_thresholds(32, 8);
            let mut monotone = 0.0f64;
            for (i, (is_push, raw)) in ops.iter().enumerate() {
                if *is_push {
                    let at = SimTime::from_secs(monotone + *raw as f64 / 100.0);
                    heap.push(at, i);
                    cal.push(at, i);
                    ada.push(at, i);
                } else {
                    let (h, c, a) = (heap.pop(), cal.pop(), ada.pop());
                    match (h, c, a) {
                        (None, None, None) => {}
                        (Some(x), Some(y), Some(z)) => {
                            prop_assert_eq!(x.at, y.at);
                            prop_assert_eq!(x.at, z.at);
                            prop_assert_eq!(x.event, y.event);
                            prop_assert_eq!(x.event, z.event);
                            prop_assert_eq!(x.seq, z.seq, "stamps must survive migration");
                            monotone = x.at.as_secs();
                        }
                        (h, c, a) => prop_assert!(
                            false,
                            "emptiness disagreement: heap={} cal={} ada={}",
                            h.is_some(), c.is_some(), a.is_some()
                        ),
                    }
                }
            }
            loop {
                match (heap.pop(), cal.pop(), ada.pop()) {
                    (None, None, None) => break,
                    (Some(x), Some(y), Some(z)) => {
                        prop_assert_eq!(x.at, y.at);
                        prop_assert_eq!(x.at, z.at);
                        prop_assert_eq!(x.event, y.event);
                        prop_assert_eq!(x.event, z.event);
                    }
                    (h, c, a) => prop_assert!(
                        false,
                        "tail emptiness disagreement: heap={} cal={} ada={}",
                        h.is_some(), c.is_some(), a.is_some()
                    ),
                }
            }
        }
    }
}

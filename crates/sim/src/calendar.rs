//! A calendar queue — the classic O(1)-amortised DES event queue
//! (R. Brown, CACM 1988) — as an alternative to the binary-heap
//! [`HeapQueue`](crate::event::HeapQueue).
//!
//! Events hash into day buckets by timestamp; dequeue scans the current
//! day and wraps year by year. With bucket width tuned to the mean event
//! spacing, both operations are amortised O(1), versus the heap's
//! O(log n). The queue resizes itself (doubling/halving the bucket count)
//! when occupancy drifts, and retunes the width from a sample of queued
//! events, as in Brown's original design.
//!
//! Same stability contract as every [`EventQueue`] backend: equal
//! timestamps dequeue in insertion order (per-bucket vectors are kept
//! sorted by (time, seq)). The `event_queue` Criterion bench compares the
//! backends under the hold model; the heap wins below a few thousand
//! pending events, the calendar past ~10⁴ — which is exactly the
//! migration rule [`AdaptiveQueue`](crate::AdaptiveQueue) applies at
//! runtime.

use crate::event::{EventEntry, EventQueue};
use crate::time::SimTime;
use std::collections::VecDeque;

/// A calendar queue with Brown's dynamic resizing.
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    /// `buckets[d]` holds entries with `floor(t / width) % n_buckets == d`,
    /// sorted ascending by (time, seq). Ring buffers, so the common
    /// dequeue — taking the bucket's head — is O(1) instead of shifting
    /// the whole bucket.
    buckets: Vec<VecDeque<EventEntry<E>>>,
    /// Bucket (day) width in seconds.
    width: f64,
    /// Timestamp of the last dequeued event (monotonicity floor; the
    /// dequeue scan restarts from its day window).
    last_time: f64,
    len: usize,
    next_seq: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with a small initial calendar.
    pub fn new() -> Self {
        Self::with_shape(2, 1.0)
    }

    fn with_shape(n_buckets: usize, width: f64) -> Self {
        CalendarQueue {
            buckets: (0..n_buckets).map(|_| VecDeque::new()).collect(),
            width,
            last_time: 0.0,
            len: 0,
            next_seq: 0,
        }
    }

    fn bucket_of(&self, t: f64) -> usize {
        ((t / self.width) as u64 % self.buckets.len() as u64) as usize
    }

    /// The integer day-window ("lap") index of a timestamp. Must use the
    /// exact float expression of [`Self::bucket_of`]: membership tests in
    /// `pop` compare these indices, and any divergence from the placement
    /// arithmetic (e.g. an incrementally accumulated window top) mis-sorts
    /// events that land exactly on a bucket boundary.
    fn lap_of(&self, t: f64) -> u64 {
        (t / self.width) as u64
    }

    /// Inserts an already-stamped entry, preserving its sequence number —
    /// the backend-migration primitive used by
    /// [`AdaptiveQueue`](crate::AdaptiveQueue).
    pub fn push_entry(&mut self, entry: EventEntry<E>) {
        self.next_seq = self.next_seq.max(entry.seq + 1);
        let b = self.bucket_of(entry.at.as_secs());
        // Insert keeping the bucket sorted by (time, seq). Most pushes in a
        // DES land at the bucket tail, so search from the back.
        let bucket = &mut self.buckets[b];
        let pos = bucket
            .iter()
            .rposition(|e| (e.at, e.seq) < (entry.at, entry.seq))
            .map(|p| p + 1)
            .unwrap_or(0);
        bucket.insert(pos, entry);
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Drains all entries, unordered (backend-migration primitive).
    pub fn drain_entries(&mut self) -> Vec<EventEntry<E>> {
        let mut all = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        self.len = 0;
        all
    }

    /// Occupancy of the fullest bucket. A value far above `len /
    /// n_buckets` means timestamps are clustering into few days (the
    /// calendar has degenerated to a sorted list); the adaptive queue uses
    /// this as a migrate-back-to-heap signal.
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Number of day buckets in the current calendar.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The day bucket holding the earliest entry, or `None` when empty.
    /// Shared scan behind `pop`/`peek_time`: walks one year of day windows
    /// from the monotonicity floor, falling back to a direct minimum over
    /// bucket heads when every event lies beyond the year.
    fn front_bucket(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        // Align the scan window to the earliest possible day for the
        // monotone clock (events are never earlier than last_time).
        let n = self.buckets.len();
        let first_lap = self.lap_of(self.last_time);
        for lap in first_lap..first_lap + n as u64 {
            let day = (lap % n as u64) as usize;
            let front_lap = self.buckets[day]
                .front()
                .map(|first| self.lap_of(first.at.as_secs()));
            if let Some(front_lap) = front_lap {
                // `<=` also catches same-day events of earlier laps, which
                // the monotone clock makes same-lap in practice.
                if front_lap <= lap {
                    return Some(day);
                }
            }
        }
        // Sparse case: direct minimum over bucket heads.
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|e| (i, (e.at, e.seq))))
            .min_by(|a, b| a.1.cmp(&b.1))
            .map(|(i, _)| i)
    }

    /// Rebuilds the calendar with `n_buckets`, retuning the width from the
    /// spacing of up to 32 sampled events.
    fn resize(&mut self, n_buckets: usize) {
        let mut all: Vec<EventEntry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        all.sort_by_key(|e| (e.at, e.seq));
        // Brown's width rule: ~3× the mean gap of a sample near the head.
        let sample: Vec<f64> = all.iter().take(32).map(|e| e.at.as_secs()).collect();
        if sample.len() >= 2 {
            let span = sample.last().unwrap() - sample.first().unwrap();
            let mean_gap = span / (sample.len() - 1) as f64;
            if mean_gap > 0.0 {
                self.width = 3.0 * mean_gap;
            }
        }
        self.buckets = (0..n_buckets).map(|_| VecDeque::new()).collect();
        let len = all.len();
        for entry in all {
            let b = self.bucket_of(entry.at.as_secs());
            self.buckets[b].push_back(entry);
        }
        self.len = len;
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.push_entry(EventEntry { at, seq, event });
        seq
    }

    fn pop(&mut self) -> Option<EventEntry<E>> {
        let day = self.front_bucket()?;
        let entry = self.buckets[day].pop_front().expect("front exists");
        self.len -= 1;
        self.last_time = entry.at.as_secs();
        if self.buckets.len() > 4 && self.len < self.buckets.len() / 2 {
            let target = (self.buckets.len() / 2).max(2);
            self.resize(target);
        }
        Some(entry)
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.front_bucket()
            .map(|day| self.buckets[day].front().expect("front exists").at)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for &x in &[5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0] {
            q.push(t(x), x as u32);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.event);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.push(t(2.5), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::new();
        q.push(t(10.0), 'b');
        q.push(t(5.0), 'a');
        assert_eq!(q.pop().unwrap().event, 'a');
        q.push(t(7.0), 'c');
        assert_eq!(q.pop().unwrap().event, 'c');
        assert_eq!(q.pop().unwrap().event, 'b');
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::new();
        q.push(t(1e6), 1u8);
        q.push(t(2e6), 2);
        q.push(t(0.5), 0);
        assert_eq!(q.pop().unwrap().event, 0);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for &x in &[5.0, 1.0, 9.0, 3.0, 1e7] {
            q.push(t(x), x as u64);
        }
        while !q.is_empty() {
            let peeked = q.peek_time().unwrap();
            let popped = q.pop().unwrap();
            assert_eq!(peeked, popped.at);
        }
        assert_eq!(q.peek_time(), None);
    }

    /// Regression: an event landing exactly on a day-window boundary must
    /// not be skipped by the dequeue scan. The old scan accumulated the
    /// window top incrementally (`top += width`), which can disagree in the
    /// last float ulp with the `(t / width) as u64` arithmetic that placed
    /// the event, making the scan pass over the event's bucket and return a
    /// later event first. Found by the `agrees_with_heap` differential
    /// proptest; kept as a deterministic fixture.
    #[test]
    fn boundary_event_not_skipped() {
        let pushes = [
            94.86, 185.48, 241.07, 328.22, 395.94, 410.4, 487.68, 564.68, 656.67, 718.39, 780.11,
            810.38, 852.36, 883.63, 925.61, 964.25, 1002.23, 1040.87, 1093.76, 1128.73, 1163.7,
            1198.67,
        ];
        // Replay a push/pop interleaving dense enough to trigger resizes
        // and land an event on a window boundary, then drain and check
        // global order.
        let mut q = CalendarQueue::new();
        let mut popped: Vec<f64> = Vec::new();
        for (i, &at) in pushes.iter().enumerate() {
            q.push(t(at), i);
            if i % 3 == 2 {
                popped.push(q.pop().unwrap().at.as_secs());
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e.at.as_secs());
        }
        assert_eq!(popped.len(), pushes.len());
        for w in popped.windows(2) {
            assert!(w[0] <= w[1], "out of order: {popped:?}");
        }
    }

    #[test]
    fn growth_and_shrink_preserve_contents() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u32 {
            q.push(t((i * 7 % 501) as f64 + (i as f64) * 1e-6), i);
        }
        assert_eq!(q.len(), 1000);
        let mut prev = t(0.0);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!(e.at >= prev, "order violated");
            prev = e.at;
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    #[test]
    fn occupancy_stats_track_contents() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.max_bucket_len(), 0);
        for i in 0..64 {
            q.push(t(42.0), i); // all same instant: one bucket holds all
        }
        assert_eq!(q.max_bucket_len(), 64);
        assert!(q.n_buckets() >= 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::event::HeapQueue;
    use proptest::prelude::*;

    proptest! {
        /// The calendar queue agrees exactly with the binary-heap queue on
        /// any interleaving of pushes and pops (differential test).
        #[test]
        fn agrees_with_heap(ops in proptest::collection::vec(
            // (is_push, time) — pops ignore the time
            (proptest::bool::ANY, 0u32..10_000), 1..400)
        ) {
            let mut cal = CalendarQueue::new();
            let mut heap = HeapQueue::new();
            let mut monotone = 0.0f64;
            for (i, (is_push, raw)) in ops.iter().enumerate() {
                if *is_push {
                    // Times must respect the monotone-pop floor to model a
                    // real DES (no scheduling into the past).
                    let at = SimTime::from_secs(monotone + *raw as f64 / 100.0);
                    cal.push(at, i);
                    heap.push(at, i);
                } else {
                    let a = cal.pop();
                    let b = heap.pop();
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.at, y.at);
                            prop_assert_eq!(x.event, y.event);
                            monotone = x.at.as_secs();
                        }
                        other => prop_assert!(false, "disagreement: {:?}", other.0.is_some()),
                    }
                }
            }
            // Drain both: must agree to the end.
            loop {
                match (cal.pop(), heap.pop()) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        prop_assert_eq!(x.at, y.at);
                        prop_assert_eq!(x.event, y.event);
                    }
                    other => prop_assert!(false, "tail disagreement: {:?}", other.0.is_some()),
                }
            }
        }
    }
}

//! Always-on phase profiler: where does the wall time of a campaign go?
//!
//! Every past hot-path PR was aimed by microbench guesswork because the
//! standing campaigns never said *which* phase — the stage-1 shortlist
//! walk, the stage-2 what-if drains, the model-repair hooks or the
//! kernel's own queue — owned the seconds. This module is the
//! attribution: a fixed [`Phase`] enum, a scope-guard [`span`] that
//! charges its lifetime to one phase through a raw monotonic counter,
//! and thread-local accumulators so recording a span is two counter
//! reads and two plain adds — no atomics, no locks, no allocation,
//! cheap enough to leave on in release campaigns (the benches *gate*
//! the measured overhead below 2 % of wall time, using
//! [`calibrate_span_ns`] × the span count as a conservative estimate).
//!
//! On x86_64 the counter is the invariant TSC read directly with
//! `rdtsc` — a fraction of the cost of `Instant::now`'s vDSO call,
//! which matters because the hottest span site (`kernel_pop`) brackets
//! an operation of comparable size to the clock read itself.
//! Accumulators hold raw ticks; [`snapshot`] converts to nanoseconds
//! through a once-measured ticks-per-nanosecond ratio. Other
//! architectures fall back to [`std::time::Instant`].
//!
//! Accumulators are per thread on purpose: every instrumented section
//! runs on the simulation's driving thread (the kernel loop, the
//! router's serial sections, the engine's hooks), so [`snapshot`] on
//! that thread sees the whole campaign, and worker-pool threads — which
//! never open spans — cannot race anything. The profiler is *infra*,
//! not an experiment: phases are chosen so sibling spans never nest
//! (stage 1 / stage 2 are disjoint sections of one decision; hook time
//! during churn is charged to `Churn`, not `CommitHooks`), which keeps
//! the per-phase totals additive against wall time.
//!
//! When campaigns themselves fan out over the pool (parallel
//! replications), each worker accumulates into its own thread-locals.
//! [`flush`] drains the calling thread's accumulators into a process-wide
//! atomic ledger (called once per replication, so the atomics cost
//! nothing per span), and [`merged_snapshot`] reads the ledger plus the
//! caller's live locals — the cross-thread view `--profile` renders.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The raw clock behind the spans: TSC ticks on x86_64 (converted to
/// nanoseconds only at [`snapshot`] time), `Instant`-derived
/// nanoseconds elsewhere. Both are process-monotonic; only *deltas*
/// ever leave this module.
#[cfg(target_arch = "x86_64")]
mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Current raw timestamp, in TSC ticks.
    #[inline]
    pub fn now() -> u64 {
        // SAFETY: `rdtsc` is unprivileged on every x86_64 target this
        // crate builds for; it reads a counter and has no other effect.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// Ticks-per-nanosecond ratio, measured once per process against
    /// the OS monotonic clock over a short spin (the flags this path
    /// assumes — `constant_tsc`/`nonstop_tsc` — make the ratio stable
    /// across cores and frequency states).
    fn ticks_per_nano() -> f64 {
        static RATIO: OnceLock<f64> = OnceLock::new();
        *RATIO.get_or_init(|| {
            let t0 = Instant::now();
            let c0 = now();
            while t0.elapsed().as_millis() < 5 {
                std::hint::spin_loop();
            }
            let ticks = now().wrapping_sub(c0);
            let nanos = t0.elapsed().as_nanos().max(1) as f64;
            (ticks as f64 / nanos).max(f64::MIN_POSITIVE)
        })
    }

    /// Converts an accumulated tick delta to nanoseconds.
    pub fn to_nanos(ticks: u64) -> u64 {
        (ticks as f64 / ticks_per_nano()) as u64
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod clock {
    use std::sync::OnceLock;
    use std::time::Instant;

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// Current raw timestamp: nanoseconds since the process epoch.
    #[inline]
    pub fn now() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    /// Raw deltas are already nanoseconds on this path.
    pub fn to_nanos(ticks: u64) -> u64 {
        ticks
    }
}

/// The fixed set of profiled phases. One decision contributes to
/// `Stage1Walk` (shortlist construction across the shard federation)
/// and `Stage2Predict` (the heuristic's batched what-if queries); the
/// rest of a campaign's work lands in the hook, kernel and periodic
/// phases. Phases are disjoint by construction — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Stage 1: per-shard selector shortlists + the skyline merge.
    Stage1Walk,
    /// Stage 2: the heuristic's what-if predictions over the shortlist.
    Stage2Predict,
    /// Commit-time prediction + commit/complete model-repair hooks
    /// (outside churn handling).
    CommitHooks,
    /// The kernel's event-queue pop (heap/calendar/adaptive backend).
    KernelPop,
    /// Fault handling: crashes, joins, leaves, provisions, retractions
    /// and rebalances — including the model hooks they trigger.
    Churn,
    /// Periodic load-report refresh (per-server or per-shard).
    Reports,
}

/// Number of phases (array stride of the accumulators).
pub const N_PHASES: usize = 6;

/// Every phase, in declaration order (the order of [`PhaseTotals`]
/// arrays and of every rendered table).
pub const ALL_PHASES: [Phase; N_PHASES] = [
    Phase::Stage1Walk,
    Phase::Stage2Predict,
    Phase::CommitHooks,
    Phase::KernelPop,
    Phase::Churn,
    Phase::Reports,
];

impl Phase {
    /// Stable display / JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Stage1Walk => "stage1_walk",
            Phase::Stage2Predict => "stage2_predict",
            Phase::CommitHooks => "commit_hooks",
            Phase::KernelPop => "kernel_pop",
            Phase::Churn => "churn",
            Phase::Reports => "reports",
        }
    }
}

/// One thread's live accumulators: raw clock ticks and closed-span
/// counts per phase, updated in place (no whole-array copies on the
/// span path).
struct Acc {
    ticks: [Cell<u64>; N_PHASES],
    counts: [Cell<u64>; N_PHASES],
}

thread_local! {
    static ACC: Acc = const {
        Acc {
            ticks: [const { Cell::new(0) }; N_PHASES],
            counts: [const { Cell::new(0) }; N_PHASES],
        }
    };
}

/// Reads the calling thread's raw accumulators.
fn raw_local() -> ([u64; N_PHASES], [u64; N_PHASES]) {
    ACC.with(|acc| {
        let mut ticks = [0; N_PHASES];
        let mut counts = [0; N_PHASES];
        for i in 0..N_PHASES {
            ticks[i] = acc.ticks[i].get();
            counts[i] = acc.counts[i].get();
        }
        (ticks, counts)
    })
}

/// Overwrites the calling thread's raw accumulators.
fn set_raw_local(ticks: [u64; N_PHASES], counts: [u64; N_PHASES]) {
    ACC.with(|acc| {
        for i in 0..N_PHASES {
            acc.ticks[i].set(ticks[i]);
            acc.counts[i].set(counts[i]);
        }
    });
}

/// A live span: charges the time from construction to drop to `phase`.
/// Bind it to a `_sp` local — dropping at end of scope closes it.
#[must_use = "a span charges its scope's lifetime; dropping it immediately records nothing"]
pub struct Span {
    phase: usize,
    start: u64,
}

/// Opens a span on `phase` for the current scope.
#[inline]
pub fn span(phase: Phase) -> Span {
    Span {
        phase: phase as usize,
        start: clock::now(),
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let dt = clock::now().wrapping_sub(self.start);
        ACC.with(|acc| {
            let t = &acc.ticks[self.phase];
            t.set(t.get().wrapping_add(dt));
            let c = &acc.counts[self.phase];
            c.set(c.get() + 1);
        });
    }
}

/// One thread's accumulated phase totals, as captured by [`snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Nanoseconds per phase, indexed like [`ALL_PHASES`].
    pub nanos: [u64; N_PHASES],
    /// Closed spans per phase, indexed like [`ALL_PHASES`].
    pub counts: [u64; N_PHASES],
}

impl PhaseTotals {
    /// Accumulated nanoseconds of `phase`.
    pub fn nanos_of(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Closed spans of `phase`.
    pub fn count_of(&self, phase: Phase) -> u64 {
        self.counts[phase as usize]
    }

    /// Total profiled nanoseconds across every phase.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Total closed spans across every phase.
    pub fn total_spans(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `phase`'s share of the profiled time, in `[0, 1]` (zero when
    /// nothing was profiled).
    pub fn share_of(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos_of(phase) as f64 / total as f64
        }
    }

    /// The totals since `earlier` (for profiling one section of a
    /// process that has already recorded spans).
    pub fn since(&self, earlier: &PhaseTotals) -> PhaseTotals {
        let mut out = *self;
        for i in 0..N_PHASES {
            out.nanos[i] = out.nanos[i].saturating_sub(earlier.nanos[i]);
            out.counts[i] = out.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }
}

/// The current thread's accumulated totals, ticks converted to
/// nanoseconds (the conversion is monotone, so [`PhaseTotals::since`]
/// deltas between snapshots stay consistent).
pub fn snapshot() -> PhaseTotals {
    let (ticks, counts) = raw_local();
    let mut out = PhaseTotals {
        counts,
        ..PhaseTotals::default()
    };
    for (ns, t) in out.nanos.iter_mut().zip(ticks) {
        *ns = clock::to_nanos(t);
    }
    out
}

/// Clears the current thread's accumulators.
pub fn reset() {
    set_raw_local([0; N_PHASES], [0; N_PHASES]);
}

/// Process-wide ledger of flushed totals, in raw clock ticks. Touched
/// only by [`flush`], [`merged_snapshot`] and [`reset_merged`] — never
/// on the span path, so recording stays atomics-free.
static MERGED_TICKS: [AtomicU64; N_PHASES] = [const { AtomicU64::new(0) }; N_PHASES];
static MERGED_COUNTS: [AtomicU64; N_PHASES] = [const { AtomicU64::new(0) }; N_PHASES];

/// Drains the calling thread's accumulators into the process-wide
/// ledger and clears them. The runner calls this after every
/// replication, on whichever thread ran it — worker or caller — so a
/// parallel campaign's spans all reach the ledger no matter which pool
/// thread recorded them.
pub fn flush() {
    let (ticks, counts) = raw_local();
    reset();
    for i in 0..N_PHASES {
        MERGED_TICKS[i].fetch_add(ticks[i], Ordering::Relaxed);
        MERGED_COUNTS[i].fetch_add(counts[i], Ordering::Relaxed);
    }
}

/// The process-wide flushed totals **plus** the calling thread's live
/// (unflushed) accumulators — the complete cross-thread view, assuming
/// every other recording thread has flushed (the runner guarantees this
/// by flushing inside the worker job, before the pool scope joins).
pub fn merged_snapshot() -> PhaseTotals {
    let (ticks, counts) = raw_local();
    let mut out = PhaseTotals::default();
    for i in 0..N_PHASES {
        let total = ticks[i].wrapping_add(MERGED_TICKS[i].load(Ordering::Relaxed));
        out.nanos[i] = clock::to_nanos(total);
        out.counts[i] = counts[i] + MERGED_COUNTS[i].load(Ordering::Relaxed);
    }
    out
}

/// Clears the process-wide ledger (the caller's thread-locals are left
/// alone — pair with [`reset`] to zero the full merged view).
pub fn reset_merged() {
    for i in 0..N_PHASES {
        MERGED_TICKS[i].store(0, Ordering::Relaxed);
        MERGED_COUNTS[i].store(0, Ordering::Relaxed);
    }
}

/// Measures the cost of one open/close span pair on this machine,
/// nanoseconds, by timing `iters` empty spans. The raw accumulators are
/// restored afterwards, so calibration never pollutes a campaign's
/// totals. `overhead ≈ calibrate_span_ns(..) × total_spans` is a
/// conservative bound (real spans amortise the two clock reads over
/// actual work) — the benches gate that bound against wall time.
pub fn calibrate_span_ns(iters: u32) -> f64 {
    let iters = iters.max(1);
    let (ticks, counts) = raw_local();
    let t0 = Instant::now();
    for _ in 0..iters {
        let _sp = span(Phase::KernelPop);
    }
    let per_span = t0.elapsed().as_nanos() as f64 / iters as f64;
    set_raw_local(ticks, counts);
    per_span
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_their_phase() {
        reset();
        let before = snapshot();
        {
            let _sp = span(Phase::Stage1Walk);
            std::hint::black_box(0u64);
        }
        {
            let _sp = span(Phase::Stage1Walk);
        }
        {
            let _sp = span(Phase::Reports);
        }
        let got = snapshot().since(&before);
        assert_eq!(got.count_of(Phase::Stage1Walk), 2);
        assert_eq!(got.count_of(Phase::Reports), 1);
        assert_eq!(got.count_of(Phase::Churn), 0);
        assert_eq!(got.total_spans(), 3);
        // Monotonic counters can legitimately report 0 ns for an empty
        // span; the phase totals must still be consistent.
        assert_eq!(
            got.total_nanos(),
            ALL_PHASES.iter().map(|&p| got.nanos_of(p)).sum::<u64>()
        );
    }

    #[test]
    fn shares_partition_unity_over_live_phases() {
        reset();
        for _ in 0..100 {
            let _sp = span(Phase::Stage2Predict);
            std::thread::yield_now();
        }
        let snap = snapshot();
        if snap.total_nanos() > 0 {
            let sum: f64 = ALL_PHASES.iter().map(|&p| snap.share_of(p)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to 1, got {sum}");
        }
        reset();
        assert_eq!(snapshot().total_spans(), 0);
    }

    #[test]
    fn calibration_restores_accumulators() {
        reset();
        {
            let _sp = span(Phase::Churn);
        }
        let before = snapshot();
        let ns = calibrate_span_ns(10_000);
        assert!(ns >= 0.0 && ns.is_finite());
        assert_eq!(snapshot(), before, "calibration must not leak spans");
    }

    #[test]
    fn phase_names_are_stable_json_keys() {
        let names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "stage1_walk",
                "stage2_predict",
                "commit_hooks",
                "kernel_pop",
                "churn",
                "reports"
            ]
        );
    }

    /// Spans recorded on worker threads reach [`merged_snapshot`] once
    /// each worker flushes — the regression test for `--profile` under
    /// parallel replications. Uses deltas against the ledger so
    /// concurrently running tests cannot perturb it.
    #[test]
    fn flushed_worker_spans_reach_the_merged_snapshot() {
        let before = merged_snapshot().since(&snapshot());
        let workers: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..5 {
                        let _sp = span(Phase::Stage2Predict);
                        std::hint::black_box(0u64);
                    }
                    flush();
                    // Flush leaves the worker's locals empty.
                    assert_eq!(snapshot().total_spans(), 0);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let got = merged_snapshot().since(&snapshot()).since(&before);
        assert_eq!(got.count_of(Phase::Stage2Predict), 15);
        // The caller's live locals are part of the merged view too.
        {
            let _sp = span(Phase::Reports);
        }
        let with_local = merged_snapshot().since(&before);
        assert!(with_local.count_of(Phase::Reports) >= 1);
    }

    #[test]
    fn snapshots_are_thread_local() {
        reset();
        {
            let _sp = span(Phase::KernelPop);
        }
        let here = snapshot().count_of(Phase::KernelPop);
        assert!(here >= 1);
        let other = std::thread::spawn(|| snapshot().total_spans())
            .join()
            .expect("probe thread");
        assert_eq!(other, 0, "a fresh thread starts with empty accumulators");
    }
}

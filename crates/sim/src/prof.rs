//! Always-on phase profiler: where does the wall time of a campaign go?
//!
//! Every past hot-path PR was aimed by microbench guesswork because the
//! standing campaigns never said *which* phase — the stage-1 shortlist
//! walk, the stage-2 what-if drains, the model-repair hooks or the
//! kernel's own queue — owned the seconds. This module is the
//! attribution: a fixed [`Phase`] enum, a scope-guard [`span`] that
//! charges its lifetime to one phase through a monotonic counter
//! ([`std::time::Instant`]), and thread-local accumulators so recording
//! a span is two counter reads and two plain adds — no atomics, no
//! locks, no allocation, cheap enough to leave on in release campaigns
//! (the benches *gate* the measured overhead below 2 % of wall time,
//! using [`calibrate_span_ns`] × the span count as a conservative
//! estimate).
//!
//! Accumulators are per thread on purpose: every instrumented section
//! runs on the simulation's driving thread (the kernel loop, the
//! router's serial sections, the engine's hooks), so [`snapshot`] on
//! that thread sees the whole campaign, and worker-pool threads — which
//! never open spans — cannot race anything. The profiler is *infra*,
//! not an experiment: phases are chosen so sibling spans never nest
//! (stage 1 / stage 2 are disjoint sections of one decision; hook time
//! during churn is charged to `Churn`, not `CommitHooks`), which keeps
//! the per-phase totals additive against wall time.

use std::cell::Cell;
use std::time::Instant;

/// The fixed set of profiled phases. One decision contributes to
/// `Stage1Walk` (shortlist construction across the shard federation)
/// and `Stage2Predict` (the heuristic's batched what-if queries); the
/// rest of a campaign's work lands in the hook, kernel and periodic
/// phases. Phases are disjoint by construction — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Stage 1: per-shard selector shortlists + the skyline merge.
    Stage1Walk,
    /// Stage 2: the heuristic's what-if predictions over the shortlist.
    Stage2Predict,
    /// Commit-time prediction + commit/complete model-repair hooks
    /// (outside churn handling).
    CommitHooks,
    /// The kernel's event-queue pop (heap/calendar/adaptive backend).
    KernelPop,
    /// Fault handling: crashes, joins, leaves, provisions, retractions
    /// and rebalances — including the model hooks they trigger.
    Churn,
    /// Periodic load-report refresh (per-server or per-shard).
    Reports,
}

/// Number of phases (array stride of the accumulators).
pub const N_PHASES: usize = 6;

/// Every phase, in declaration order (the order of [`PhaseTotals`]
/// arrays and of every rendered table).
pub const ALL_PHASES: [Phase; N_PHASES] = [
    Phase::Stage1Walk,
    Phase::Stage2Predict,
    Phase::CommitHooks,
    Phase::KernelPop,
    Phase::Churn,
    Phase::Reports,
];

impl Phase {
    /// Stable display / JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Stage1Walk => "stage1_walk",
            Phase::Stage2Predict => "stage2_predict",
            Phase::CommitHooks => "commit_hooks",
            Phase::KernelPop => "kernel_pop",
            Phase::Churn => "churn",
            Phase::Reports => "reports",
        }
    }
}

thread_local! {
    /// Accumulated nanoseconds per phase, this thread.
    static NANOS: Cell<[u64; N_PHASES]> = const { Cell::new([0; N_PHASES]) };
    /// Closed spans per phase, this thread.
    static COUNTS: Cell<[u64; N_PHASES]> = const { Cell::new([0; N_PHASES]) };
}

/// A live span: charges the time from construction to drop to `phase`.
/// Bind it to a `_sp` local — dropping at end of scope closes it.
#[must_use = "a span charges its scope's lifetime; dropping it immediately records nothing"]
pub struct Span {
    phase: usize,
    start: Instant,
}

/// Opens a span on `phase` for the current scope.
#[inline]
pub fn span(phase: Phase) -> Span {
    Span {
        phase: phase as usize,
        start: Instant::now(),
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let dt = self.start.elapsed().as_nanos() as u64;
        NANOS.with(|acc| {
            let mut v = acc.get();
            v[self.phase] += dt;
            acc.set(v);
        });
        COUNTS.with(|acc| {
            let mut v = acc.get();
            v[self.phase] += 1;
            acc.set(v);
        });
    }
}

/// One thread's accumulated phase totals, as captured by [`snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Nanoseconds per phase, indexed like [`ALL_PHASES`].
    pub nanos: [u64; N_PHASES],
    /// Closed spans per phase, indexed like [`ALL_PHASES`].
    pub counts: [u64; N_PHASES],
}

impl PhaseTotals {
    /// Accumulated nanoseconds of `phase`.
    pub fn nanos_of(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Closed spans of `phase`.
    pub fn count_of(&self, phase: Phase) -> u64 {
        self.counts[phase as usize]
    }

    /// Total profiled nanoseconds across every phase.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Total closed spans across every phase.
    pub fn total_spans(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `phase`'s share of the profiled time, in `[0, 1]` (zero when
    /// nothing was profiled).
    pub fn share_of(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos_of(phase) as f64 / total as f64
        }
    }

    /// The totals since `earlier` (for profiling one section of a
    /// process that has already recorded spans).
    pub fn since(&self, earlier: &PhaseTotals) -> PhaseTotals {
        let mut out = *self;
        for i in 0..N_PHASES {
            out.nanos[i] = out.nanos[i].saturating_sub(earlier.nanos[i]);
            out.counts[i] = out.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }
}

/// The current thread's accumulated totals.
pub fn snapshot() -> PhaseTotals {
    PhaseTotals {
        nanos: NANOS.with(Cell::get),
        counts: COUNTS.with(Cell::get),
    }
}

/// Clears the current thread's accumulators.
pub fn reset() {
    NANOS.with(|acc| acc.set([0; N_PHASES]));
    COUNTS.with(|acc| acc.set([0; N_PHASES]));
}

/// Measures the cost of one open/close span pair on this machine,
/// nanoseconds, by timing `iters` empty spans. The accumulators are
/// restored afterwards, so calibration never pollutes a campaign's
/// totals. `overhead ≈ calibrate_span_ns(..) × total_spans` is a
/// conservative bound (real spans amortise the two `Instant` reads over
/// actual work) — the benches gate that bound against wall time.
pub fn calibrate_span_ns(iters: u32) -> f64 {
    let iters = iters.max(1);
    let before = snapshot();
    let t0 = Instant::now();
    for _ in 0..iters {
        let _sp = span(Phase::KernelPop);
    }
    let per_span = t0.elapsed().as_nanos() as f64 / iters as f64;
    NANOS.with(|acc| acc.set(before.nanos));
    COUNTS.with(|acc| acc.set(before.counts));
    per_span
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_their_phase() {
        reset();
        let before = snapshot();
        {
            let _sp = span(Phase::Stage1Walk);
            std::hint::black_box(0u64);
        }
        {
            let _sp = span(Phase::Stage1Walk);
        }
        {
            let _sp = span(Phase::Reports);
        }
        let got = snapshot().since(&before);
        assert_eq!(got.count_of(Phase::Stage1Walk), 2);
        assert_eq!(got.count_of(Phase::Reports), 1);
        assert_eq!(got.count_of(Phase::Churn), 0);
        assert_eq!(got.total_spans(), 3);
        // Monotonic counters can legitimately report 0 ns for an empty
        // span; the phase totals must still be consistent.
        assert_eq!(
            got.total_nanos(),
            ALL_PHASES.iter().map(|&p| got.nanos_of(p)).sum::<u64>()
        );
    }

    #[test]
    fn shares_partition_unity_over_live_phases() {
        reset();
        for _ in 0..100 {
            let _sp = span(Phase::Stage2Predict);
            std::thread::yield_now();
        }
        let snap = snapshot();
        if snap.total_nanos() > 0 {
            let sum: f64 = ALL_PHASES.iter().map(|&p| snap.share_of(p)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to 1, got {sum}");
        }
        reset();
        assert_eq!(snapshot().total_spans(), 0);
    }

    #[test]
    fn calibration_restores_accumulators() {
        reset();
        {
            let _sp = span(Phase::Churn);
        }
        let before = snapshot();
        let ns = calibrate_span_ns(10_000);
        assert!(ns >= 0.0 && ns.is_finite());
        assert_eq!(snapshot(), before, "calibration must not leak spans");
    }

    #[test]
    fn phase_names_are_stable_json_keys() {
        let names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "stage1_walk",
                "stage2_predict",
                "commit_hooks",
                "kernel_pop",
                "churn",
                "reports"
            ]
        );
    }

    #[test]
    fn snapshots_are_thread_local() {
        reset();
        {
            let _sp = span(Phase::KernelPop);
        }
        let here = snapshot().count_of(Phase::KernelPop);
        assert!(here >= 1);
        let other = std::thread::spawn(|| snapshot().total_spans())
            .join()
            .expect("probe thread");
        assert_eq!(other, 0, "a fresh thread starts with empty accumulators");
    }
}

//! # cas-sim — discrete-event simulation kernel
//!
//! The substrate every other crate in this workspace builds on. It provides:
//!
//! * [`SimTime`] — a totally-ordered wrapper over `f64` seconds. The paper's
//!   model (and SimGrid, which the authors used for their earlier simulation
//!   study) works in continuous time; we keep `f64` but enforce the
//!   "never NaN" invariant at construction so the event queue ordering is a
//!   genuine total order.
//! * [`EventQueue`] — the *trait* every queue backend implements: stable
//!   (events at equal timestamps pop in insertion order, which makes
//!   simulations deterministic and therefore reproducible across runs and
//!   platforms), earliest-first, object-safe. Three backends ship:
//!   [`HeapQueue`] (binary heap, best below ~10⁴ pending events),
//!   [`CalendarQueue`] (Brown's amortised-O(1) calendar, best above), and
//!   [`AdaptiveQueue`] (migrates between the two at runtime by pending
//!   count and bucket occupancy — the driver's default).
//! * [`Simulation`] — a small driver that repeatedly pops the next event and
//!   hands it to a user-provided [`World`]; generic over the queue backend.
//! * [`pool`] — the process-wide work-stealing thread pool every parallel
//!   fan-out in the workspace (experiment runner, batched HTM predictions)
//!   shares, instead of spawning scoped threads per call.
//! * [`prof`] — the always-on phase profiler: scope-guard spans charging
//!   monotonic-counter time to a fixed phase enum through thread-local
//!   accumulators, cheap enough to stay on in release campaigns. Lives
//!   in the kernel crate so the kernel loop itself (`KernelPop`) can be
//!   attributed; re-exported as `cas_metrics::prof` for reporting.
//! * [`rng`] — deterministic, splittable RNG streams so that every stochastic
//!   component (arrival process, CPU noise, tie-breaking) draws from its own
//!   stream derived from one root seed.
//! * [`dist`] — the distributions the experiments need (exponential, Poisson,
//!   normal, log-normal) implemented directly so the behaviour is fixed
//!   independent of `rand` version bumps.
//!
//! The kernel is deliberately free of any grid/scheduling vocabulary: it
//! knows nothing about servers or tasks. `cas-platform` layers the resource
//! model on top and `cas-middleware` wires a full client-agent-server system
//! into a [`World`].

pub mod adaptive;
pub mod calendar;
pub mod dist;
pub mod engine;
pub mod event;
pub mod pool;
pub mod prof;
pub mod rng;
pub mod time;

pub use adaptive::AdaptiveQueue;
pub use calendar::CalendarQueue;
pub use engine::{Scheduler, Simulation, World};
pub use event::{EventEntry, EventQueue, Generation, HeapQueue};
pub use rng::{RngStream, StreamKind};
pub use time::SimTime;

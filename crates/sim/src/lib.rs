//! # cas-sim — discrete-event simulation kernel
//!
//! The substrate every other crate in this workspace builds on. It provides:
//!
//! * [`SimTime`] — a totally-ordered wrapper over `f64` seconds. The paper's
//!   model (and SimGrid, which the authors used for their earlier simulation
//!   study) works in continuous time; we keep `f64` but enforce the
//!   "never NaN" invariant at construction so the event queue ordering is a
//!   genuine total order.
//! * [`EventQueue`] — a stable priority queue: events at equal timestamps pop
//!   in insertion order, which makes simulations deterministic and therefore
//!   reproducible across runs and platforms.
//! * [`Simulation`] — a small driver that repeatedly pops the next event and
//!   hands it to a user-provided [`World`].
//! * [`rng`] — deterministic, splittable RNG streams so that every stochastic
//!   component (arrival process, CPU noise, tie-breaking) draws from its own
//!   stream derived from one root seed.
//! * [`dist`] — the distributions the experiments need (exponential, Poisson,
//!   normal, log-normal) implemented directly so the behaviour is fixed
//!   independent of `rand` version bumps.
//!
//! The kernel is deliberately free of any grid/scheduling vocabulary: it
//! knows nothing about servers or tasks. `cas-platform` layers the resource
//! model on top and `cas-middleware` wires a full client-agent-server system
//! into a [`World`].

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;
pub mod time;

pub use calendar::CalendarQueue;
pub use engine::{Scheduler, Simulation, World};
pub use event::{EventEntry, EventQueue, Generation};
pub use rng::{RngStream, StreamKind};
pub use time::SimTime;

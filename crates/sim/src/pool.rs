//! The shared work-stealing thread pool.
//!
//! One process-wide pool ([`global`]) replaces every hand-rolled
//! scoped-thread fan-out in the workspace: the experiment runner
//! (`cas-middleware::runner`) and the HTM's batched prediction fan-out
//! (`cas-core`'s `Htm::predict_all`) both queue their work here, so a sweep
//! saturates the machine once instead of each layer spawning its own
//! threads per call.
//!
//! Shape: `n` persistent workers, each with its own deque. External spawns
//! distribute round-robin; a worker pops its own deque from the front and
//! steals from the back of its siblings when idle. There is no global lock
//! around job execution — only short per-deque critical sections — so
//! nested parallelism (a runner job whose experiment calls `predict_all`)
//! composes without tearing down or re-spawning threads.
//!
//! The API is [`WorkPool::scope`], mirroring `std::thread::scope`: closures
//! may borrow from the caller's stack, and the scope blocks until every
//! spawned job has finished — executing *its own scope's* queued jobs
//! while it waits, so a pool is never deadlocked by nested scopes (a
//! thread waiting on an inner scope self-serves instead of sleeping, and
//! never adopts foreign, potentially much longer, work). Panics inside
//! jobs are captured and re-thrown from `scope`, after all sibling jobs
//! have completed (borrow safety first).
//!
//! **Determinism**: the pool schedules jobs in an unspecified order, so
//! callers that need reproducible output must write results into
//! per-job slots (disjoint `&mut` borrows) and reduce in index order
//! afterwards — which is exactly what the runner and `predict_all` do.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A queued job: the erased closure plus the identity of the scope that
/// spawned it. Workers run any job; a thread *joining* a scope only helps
/// with that scope's own jobs (see `help_until_done`), so a join on a
/// small inner scope can never be stalled behind a stolen long-running
/// outer job, and experiment frames never nest on one stack.
struct Job {
    scope_tag: usize,
    run: Box<dyn FnOnce() + Send + 'static>,
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker. With zero workers the caller's help loop
    /// drains deque 0.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet taken (parking gate; see `push`).
    pending_jobs: AtomicUsize,
    /// Round-robin cursor for external pushes.
    rr: AtomicUsize,
    /// Park/wake coordination for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Enqueues a job and wakes a sleeping worker.
    ///
    /// The `pending_jobs` increment happens *before* the deque insert and
    /// the notify happens under the `idle` lock: a worker that observes
    /// `pending_jobs == 0` while holding that lock is guaranteed to
    /// receive the wakeup this push sends.
    fn push(&self, job: Job) {
        self.pending_jobs.fetch_add(1, Ordering::SeqCst);
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        self.deques[i].lock().unwrap().push_back(job);
        let _guard = self.idle.lock().unwrap();
        self.wake.notify_one();
    }

    /// Takes one job: own deque front first, then steal siblings' backs.
    fn take_job(&self, start: usize) -> Option<Job> {
        let n = self.deques.len();
        for k in 0..n {
            let idx = (start + k) % n;
            let mut dq = self.deques[idx].lock().unwrap();
            let job = if k == 0 {
                dq.pop_front()
            } else {
                dq.pop_back()
            };
            if let Some(job) = job {
                self.pending_jobs.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Takes one job belonging to the scope identified by `tag`, scanning
    /// each deque (they are short; the lock is held briefly). Used by
    /// joining threads, which must not adopt foreign — potentially much
    /// longer — work while they wait.
    fn take_scope_job(&self, tag: usize) -> Option<Job> {
        for dq in &self.deques {
            let mut dq = dq.lock().unwrap();
            if let Some(pos) = dq.iter().position(|j| j.scope_tag == tag) {
                let job = dq.remove(pos).expect("position is in range");
                self.pending_jobs.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(job) = shared.take_job(index) {
            (job.run)();
            continue;
        }
        let guard = shared.idle.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.pending_jobs.load(Ordering::SeqCst) == 0 {
            // Timeout as a safety net only; real wakeups come from `push`.
            let _ = shared.wake.wait_timeout(guard, Duration::from_millis(100));
        }
    }
}

/// Completion tracking for one [`WorkPool::scope`] call.
#[derive(Default)]
struct ScopeState {
    /// Spawned jobs not yet finished.
    pending: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// First captured panic payload, re-thrown by `scope`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn finish(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.done_lock.lock().unwrap();
            self.done_cv.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`WorkPool::scope`].
///
/// Invariant in `'env`, like `std::thread::Scope`: jobs may borrow
/// anything that outlives the `scope` call.
pub struct PoolScope<'pool, 'env> {
    shared: &'pool Shared,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Queues `f` on the pool. Returns immediately; the enclosing
    /// [`WorkPool::scope`] call blocks until every spawned job finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // `f` (and its borrows) is consumed and dropped inside the
            // catch, strictly before `finish` releases the scope.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.finish();
        });
        // SAFETY: the lifetime is erased, never the type. `scope` blocks
        // (helping to drain the queues) until `state.pending` reaches
        // zero, i.e. until this closure has run and dropped all its
        // `'env` borrows — the same join-before-return argument that
        // makes `std::thread::scope` sound.
        let run = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(Job {
            scope_tag: Arc::as_ptr(&self.state) as usize,
            run,
        });
    }
}

/// A persistent work-stealing pool. See the module docs; most callers want
/// [`global`] rather than constructing their own.
pub struct WorkPool {
    shared: Arc<Shared>,
}

impl WorkPool {
    /// A pool with `threads` persistent workers. Zero is allowed: all work
    /// then runs on the thread that calls [`WorkPool::scope`] (useful for
    /// tests and for debugging determinism).
    pub fn with_threads(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            deques: (0..threads.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending_jobs: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cas-pool-{i}"))
                .spawn(move || worker_loop(shared, i))
                .expect("spawn pool worker");
        }
        WorkPool { shared }
    }

    /// Number of worker threads (the scoping caller helps too).
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Runs `f` with a spawn handle; blocks until every job spawned
    /// through the handle has completed. The calling thread helps execute
    /// queued jobs while it waits. If any job panicked, the first panic is
    /// re-thrown here — after all jobs finished, so scoped borrows can
    /// never dangle.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::default());
        let scope = PoolScope {
            shared: &self.shared,
            state: Arc::clone(&state),
            _marker: PhantomData,
        };
        // If `f` itself panics we still must wait for already-spawned jobs
        // before unwinding past the borrowed frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_done(&state);
        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Work-stealing join: execute this scope's queued jobs until its
    /// count hits zero. Only the scope's *own* jobs are adopted — foreign
    /// jobs may be arbitrarily long (a whole experiment replication), and
    /// stealing one here would stall the join and nest unrelated frames
    /// on this stack. A joiner can always run its own jobs, so no cycle
    /// of waiting scopes can starve (each join self-serves).
    fn help_until_done(&self, state: &Arc<ScopeState>) {
        let tag = Arc::as_ptr(state) as usize;
        while state.pending.load(Ordering::SeqCst) > 0 {
            if let Some(job) = self.shared.take_scope_job(tag) {
                (job.run)();
                continue;
            }
            let guard = state.done_lock.lock().unwrap();
            if state.pending.load(Ordering::SeqCst) > 0 {
                // Short timeout: nested scopes running on workers may push
                // new helpable jobs without signalling `done_cv`.
                let _ = state.done_cv.wait_timeout(guard, Duration::from_millis(5));
            }
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _guard = self.shared.idle.lock().unwrap();
        self.shared.wake.notify_all();
    }
}

/// The process-wide pool, sized to the machine. Created on first use;
/// lives for the life of the process.
pub fn global() -> &'static WorkPool {
    static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        WorkPool::with_threads(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_all_jobs_with_borrows() {
        let pool = WorkPool::with_threads(4);
        let mut results = vec![0usize; 100];
        pool.scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        for (i, &r) in results.iter().enumerate() {
            assert_eq!(r, i * i);
        }
    }

    #[test]
    fn zero_worker_pool_runs_on_caller() {
        let pool = WorkPool::with_threads(0);
        let mut hits = [false; 8];
        // (arrays: `iter_mut` hands out disjoint `&mut` cells, same as Vec)
        pool.scope(|s| {
            for slot in hits.iter_mut() {
                s.spawn(move || *slot = true);
            }
        });
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn nested_scopes_compose() {
        let pool = WorkPool::with_threads(2);
        let mut outer = [0u64; 8];
        pool.scope(|s| {
            for (i, slot) in outer.iter_mut().enumerate() {
                s.spawn(move || {
                    // Inner fan-out on the *global* pool: a worker waiting
                    // on an inner scope must help, not deadlock.
                    let mut inner = [0u64; 16];
                    global().scope(|s2| {
                        for (j, cell) in inner.iter_mut().enumerate() {
                            s2.spawn(move || *cell = (i * 16 + j) as u64);
                        }
                    });
                    *slot = inner.iter().sum();
                });
            }
        });
        let total: u64 = outer.iter().sum();
        assert_eq!(total, (0..128u64).sum());
    }

    #[test]
    fn panic_propagates_after_siblings_finish() {
        let pool = WorkPool::with_threads(2);
        let finished = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate out of scope");
        assert_eq!(
            finished.load(Ordering::SeqCst),
            15,
            "siblings ran to completion"
        );
    }

    #[test]
    fn sequential_scopes_reuse_workers() {
        let pool = WorkPool::with_threads(3);
        for round in 0..20 {
            let mut out = [0usize; 10];
            pool.scope(|s| {
                for (i, slot) in out.iter_mut().enumerate() {
                    s.spawn(move || *slot = round + i);
                }
            });
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, round + i);
            }
        }
    }
}

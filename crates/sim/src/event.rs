//! The event queue.
//!
//! A binary-heap priority queue with two properties a reproducible
//! discrete-event simulation needs beyond `std`'s `BinaryHeap`:
//!
//! * **Stability** — events scheduled for the same instant pop in the order
//!   they were pushed (FIFO), via a monotonically increasing sequence number.
//!   Without this, simultaneous events (common here: a load report and a task
//!   arrival at the same second) would pop in an unspecified order and runs
//!   would not be reproducible.
//! * **Cheap cancellation** — shared-resource models (fair-share CPU, shared
//!   links) must reschedule their "next completion" event every time resource
//!   membership changes. Rather than removing events from the middle of the
//!   heap, callers tag events with a [`Generation`] and bump the generation
//!   to invalidate all previously scheduled events for that resource; stale
//!   events are dropped when popped.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A generation counter used to lazily invalidate scheduled events.
///
/// Resources that reschedule their next-completion event keep a `Generation`
/// and bump it whenever previously scheduled events become obsolete. Events
/// carry the generation current at scheduling time; [`Generation::is_current`]
/// tells the popper whether the event is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Generation(pub u64);

impl Generation {
    /// Invalidate all events scheduled under the current generation.
    #[inline]
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Whether an event stamped with `stamp` is still valid.
    #[inline]
    pub fn is_current(self, stamp: Generation) -> bool {
        self == stamp
    }
}

/// An entry in the queue: an event plus its scheduling metadata.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence number (push order).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first,
        // then lowest sequence number first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable, earliest-first event queue.
///
/// ```
/// use cas_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.push(SimTime::from_secs(1.0), "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`. Returns the sequence number
    /// assigned to the entry (strictly increasing across all pushes).
    pub fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { at, seq, event });
        seq
    }

    /// Removes and returns the earliest entry, or `None` if empty.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest entry without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending entries (including any that a caller will later
    /// discard as stale — the queue itself does not know about generations).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), 'c');
        q.push(t(1.0), 'a');
        q.push(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "a1");
        q.push(t(2.0), "b1");
        q.push(t(1.0), "a2");
        q.push(t(0.5), "z");
        q.push(t(2.0), "b2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["z", "a1", "a2", "b1", "b2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(7.0), ());
        assert_eq!(q.peek_time(), Some(t(7.0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn generation_invalidation() {
        let mut gen = Generation::default();
        let stamp = gen;
        assert!(gen.is_current(stamp));
        gen.bump();
        assert!(!gen.is_current(stamp));
        assert!(gen.is_current(gen));
    }

    #[test]
    fn clear_and_counters() {
        let mut q = EventQueue::new();
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        assert_eq!(q.pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers keep increasing after clear: stability across the
        // whole simulation run, not per-queue-epoch.
        q.push(t(3.0), 3);
        assert_eq!(q.pushed(), 3);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and equal
        /// timestamps preserve push order.
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u32..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ti) in times.iter().enumerate() {
                q.push(SimTime::from_secs(ti as f64), i);
            }
            let mut prev_time = SimTime::ZERO;
            let mut prev_idx_at_time: Option<usize> = None;
            while let Some(entry) = q.pop() {
                prop_assert!(entry.at >= prev_time);
                if entry.at == prev_time {
                    if let Some(pi) = prev_idx_at_time {
                        prop_assert!(entry.event > pi, "FIFO violated at equal timestamps");
                    }
                }
                if entry.at > prev_time {
                    prev_time = entry.at;
                }
                prev_idx_at_time = Some(entry.event);
            }
        }

        /// Every pushed event is popped exactly once.
        #[test]
        fn conservation(times in proptest::collection::vec(0u32..1000, 0..300)) {
            let mut q = EventQueue::new();
            for (i, &ti) in times.iter().enumerate() {
                q.push(SimTime::from_secs(ti as f64), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some(e) = q.pop() {
                prop_assert!(!seen[e.event]);
                seen[e.event] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}

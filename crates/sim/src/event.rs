//! The event-queue abstraction and its binary-heap implementation.
//!
//! [`EventQueue`] is the trait every queue backend of the simulation kernel
//! implements; [`HeapQueue`] is the default comparison-based backend. Two
//! properties a reproducible discrete-event simulation needs beyond a plain
//! priority queue, and which every implementor must uphold:
//!
//! * **Stability** — events scheduled for the same instant pop in the order
//!   they were pushed (FIFO), via a monotonically increasing sequence number.
//!   Without this, simultaneous events (common here: a load report and a task
//!   arrival at the same second) would pop in an unspecified order and runs
//!   would not be reproducible.
//! * **Cheap cancellation** — shared-resource models (fair-share CPU, shared
//!   links) must reschedule their "next completion" event every time resource
//!   membership changes. Rather than removing events from the middle of the
//!   queue, callers tag events with a [`Generation`] and bump the generation
//!   to invalidate all previously scheduled events for that resource; stale
//!   events are dropped when popped.
//!
//! The other backends live in sibling modules:
//! [`CalendarQueue`](crate::CalendarQueue) (amortised O(1), wins past ~10⁴
//! pending events) and [`AdaptiveQueue`](crate::AdaptiveQueue) (migrates
//! between the two at runtime; the kernel's default).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A generation counter used to lazily invalidate scheduled events.
///
/// Resources that reschedule their next-completion event keep a `Generation`
/// and bump it whenever previously scheduled events become obsolete. Events
/// carry the generation current at scheduling time; [`Generation::is_current`]
/// tells the popper whether the event is still live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Generation(pub u64);

impl Generation {
    /// Invalidate all events scheduled under the current generation.
    #[inline]
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Whether an event stamped with `stamp` is still valid.
    #[inline]
    pub fn is_current(self, stamp: Generation) -> bool {
        self == stamp
    }
}

/// An entry in the queue: an event plus its scheduling metadata.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence number (push order).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first,
        // then lowest sequence number first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable, earliest-first event queue — the pluggable heart of the
/// simulation kernel.
///
/// The contract, shared by every backend and enforced by the differential
/// proptests in `adaptive.rs`:
///
/// * `pop` returns entries in ascending `(at, seq)` order — time order,
///   FIFO within one instant;
/// * `push` assigns strictly increasing sequence numbers across the queue's
///   whole lifetime (stability spans backend migrations and `clear`s);
/// * `peek_time` reports the timestamp `pop` would return, without removal.
///
/// The trait is object-safe: [`Scheduler`](crate::Scheduler) holds a
/// `&mut dyn EventQueue<E>` so worlds schedule events without knowing which
/// backend drives them.
pub trait EventQueue<E> {
    /// Schedules `event` to fire at `at`. Returns the sequence number
    /// assigned to the entry (strictly increasing across all pushes).
    fn push(&mut self, at: SimTime, event: E) -> u64;

    /// Removes and returns the earliest entry, or `None` if empty.
    fn pop(&mut self) -> Option<EventEntry<E>>;

    /// The timestamp of the earliest entry without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending entries (including any that a caller will later
    /// discard as stale — the queue itself does not know about generations).
    fn len(&self) -> usize;

    /// `true` if no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A stable, earliest-first binary-heap queue: O(log n) push/pop, the best
/// all-round backend below ~10⁴ pending events.
///
/// ```
/// use cas_sim::{EventQueue, HeapQueue, SimTime};
///
/// let mut q = HeapQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.push(SimTime::from_secs(1.0), "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Inserts an already-stamped entry, preserving its sequence number —
    /// the backend-migration primitive used by
    /// [`AdaptiveQueue`](crate::AdaptiveQueue). Keeps the internal counter
    /// ahead of the entry's stamp so later `push`es stay unique.
    pub fn push_entry(&mut self, entry: EventEntry<E>) {
        self.next_seq = self.next_seq.max(entry.seq + 1);
        self.heap.push(entry);
    }

    /// Drains all entries, unordered (backend-migration primitive).
    pub fn drain_entries(&mut self) -> Vec<EventEntry<E>> {
        self.heap.drain().collect()
    }

    /// Drops all pending entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }
}

impl<E> EventQueue<E> for HeapQueue<E> {
    fn push(&mut self, at: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { at, seq, event });
        seq
    }

    fn pop(&mut self) -> Option<EventEntry<E>> {
        self.heap.pop()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapQueue::new();
        q.push(t(3.0), 'c');
        q.push(t(1.0), 'a');
        q.push(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = HeapQueue::new();
        for i in 0..100 {
            q.push(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_times_and_ties() {
        let mut q = HeapQueue::new();
        q.push(t(1.0), "a1");
        q.push(t(2.0), "b1");
        q.push(t(1.0), "a2");
        q.push(t(0.5), "z");
        q.push(t(2.0), "b2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["z", "a1", "a2", "b1", "b2"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = HeapQueue::new();
        q.push(t(7.0), ());
        assert_eq!(q.peek_time(), Some(t(7.0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn generation_invalidation() {
        let mut gen = Generation::default();
        let stamp = gen;
        assert!(gen.is_current(stamp));
        gen.bump();
        assert!(!gen.is_current(stamp));
        assert!(gen.is_current(gen));
    }

    #[test]
    fn clear_and_counters() {
        let mut q = HeapQueue::new();
        q.push(t(1.0), 1);
        q.push(t(2.0), 2);
        assert_eq!(q.pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers keep increasing after clear: stability across the
        // whole simulation run, not per-queue-epoch.
        q.push(t(3.0), 3);
        assert_eq!(q.pushed(), 3);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut q: HeapQueue<()> = HeapQueue::new();
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_entry_preserves_seq_and_advances_counter() {
        let mut q = HeapQueue::new();
        q.push_entry(EventEntry {
            at: t(1.0),
            seq: 41,
            event: 'x',
        });
        // Fresh pushes must not collide with the migrated stamp.
        let seq = q.push(t(1.0), 'y');
        assert_eq!(seq, 42);
        assert_eq!(q.pop().unwrap().event, 'x');
        assert_eq!(q.pop().unwrap().event, 'y');
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and equal
        /// timestamps preserve push order.
        #[test]
        fn pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u32..50, 1..200)) {
            let mut q = HeapQueue::new();
            for (i, &ti) in times.iter().enumerate() {
                q.push(SimTime::from_secs(ti as f64), i);
            }
            let mut prev_time = SimTime::ZERO;
            let mut prev_idx_at_time: Option<usize> = None;
            while let Some(entry) = q.pop() {
                prop_assert!(entry.at >= prev_time);
                if entry.at == prev_time {
                    if let Some(pi) = prev_idx_at_time {
                        prop_assert!(entry.event > pi, "FIFO violated at equal timestamps");
                    }
                }
                if entry.at > prev_time {
                    prev_time = entry.at;
                }
                prev_idx_at_time = Some(entry.event);
            }
        }

        /// Every pushed event is popped exactly once.
        #[test]
        fn conservation(times in proptest::collection::vec(0u32..1000, 0..300)) {
            let mut q = HeapQueue::new();
            for (i, &ti) in times.iter().enumerate() {
                q.push(SimTime::from_secs(ti as f64), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some(e) = q.pop() {
                prop_assert!(!seen[e.event]);
                seen[e.event] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}

//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component in an experiment (arrival process, task-size
//! draws, CPU noise per server, network jitter, heuristic tie-breaking, …)
//! gets its *own* stream derived from a root seed plus a structural key.
//! This gives two properties the experiment harness relies on:
//!
//! * **Reproducibility** — the same root seed always produces the same run.
//! * **Variance reduction** — changing the scheduler heuristic does not
//!   change the workload: the arrival stream is keyed independently of the
//!   scheduler's tie-break stream, so paired comparisons (the paper's
//!   "number of tasks that finish sooner than with MCT") compare the same
//!   metatask under two heuristics, exactly as the paper does.
//!
//! The generator is SplitMix64 for seeding and xoshiro256++ for the stream —
//! both public-domain algorithms implemented here directly so that output is
//! stable regardless of `rand` crate versions. The `rand::RngCore` trait is
//! implemented so `rand`-based code (e.g. `proptest` fixtures) can consume
//! streams too.

use rand::RngCore;

/// Structural identity of a stream: which component it feeds.
///
/// The discriminant participates in the seed derivation, so two components
/// with the same numeric index but different kinds get unrelated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Metatask arrival process.
    Arrivals,
    /// Task-size / parameter draws.
    TaskSizes,
    /// Per-server CPU speed noise (index = server id).
    CpuNoise(u32),
    /// Per-server network noise (index = server id).
    NetNoise(u32),
    /// Scheduler tie-breaking.
    TieBreak,
    /// Load-monitor sampling jitter (index = server id).
    Monitor(u32),
    /// Anything else; caller picks a unique tag.
    Custom(u32),
}

impl StreamKind {
    fn key(self) -> u64 {
        match self {
            StreamKind::Arrivals => 0x01 << 32,
            StreamKind::TaskSizes => 0x02 << 32,
            StreamKind::CpuNoise(i) => (0x03 << 32) | i as u64,
            StreamKind::NetNoise(i) => (0x04 << 32) | i as u64,
            StreamKind::TieBreak => 0x05 << 32,
            StreamKind::Monitor(i) => (0x06 << 32) | i as u64,
            StreamKind::Custom(i) => (0x07 << 32) | i as u64,
        }
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    s: [u64; 4],
}

impl RngStream {
    /// Derives the stream for `kind` under `root_seed`.
    pub fn derive(root_seed: u64, kind: StreamKind) -> Self {
        Self::from_seed_key(root_seed, kind.key())
    }

    /// Derives a stream from a root seed and an arbitrary key.
    pub fn from_seed_key(root_seed: u64, key: u64) -> Self {
        // Mix seed and key through SplitMix64 to fill the state. SplitMix64
        // guarantees a full-period scramble, avoiding the all-zero state.
        let mut sm = root_seed ^ key.rotate_left(17) ^ 0xD6E8_FEB8_6659_FD93;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        RngStream { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)` via Lemire's method (unbiased).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64_raw();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64_raw();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniformly choose an index into a slice of length `len`.
    pub fn choose_index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64_raw().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed_and_kind() {
        let mut a = RngStream::derive(42, StreamKind::Arrivals);
        let mut b = RngStream::derive(42, StreamKind::Arrivals);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_kinds_give_different_streams() {
        let mut a = RngStream::derive(42, StreamKind::Arrivals);
        let mut b = RngStream::derive(42, StreamKind::TieBreak);
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_kinds_are_independent() {
        let mut a = RngStream::derive(7, StreamKind::CpuNoise(0));
        let mut b = RngStream::derive(7, StreamKind::CpuNoise(1));
        let same = (0..64)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform01_in_range() {
        let mut r = RngStream::derive(1, StreamKind::TaskSizes);
        for _ in 0..10_000 {
            let x = r.uniform01();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform01_roughly_uniform() {
        let mut r = RngStream::derive(3, StreamKind::TaskSizes);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform01()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = RngStream::derive(5, StreamKind::TieBreak);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        RngStream::derive(0, StreamKind::TieBreak).below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::derive(9, StreamKind::TaskSizes);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50! permutations the chance of identity is nil.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rngcore_fill_bytes() {
        let mut r = RngStream::derive(11, StreamKind::Custom(0));
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! The simulation driver.
//!
//! A thin loop over the pluggable [`EventQueue`] trait: pop the earliest
//! event, advance the clock, hand the event to the [`World`], which may
//! schedule further events through the [`Scheduler`] handle. The driver
//! enforces the fundamental DES invariant — time never goes backwards — and
//! offers run-until-horizon and step-by-step execution for tests.
//!
//! [`Simulation`] is generic over the queue backend and defaults to
//! [`AdaptiveQueue`], which starts on the binary heap and migrates to the
//! calendar queue (and back) by live pending-event count and bucket
//! occupancy — small paper runs stay on the heap, 1k-server campaigns get
//! amortised O(1) scheduling, and nobody picks a backend by hand. The
//! [`Scheduler`] handle holds `&mut dyn EventQueue`, so worlds are
//! backend-agnostic by construction.

use crate::adaptive::AdaptiveQueue;
use crate::event::EventQueue;
use crate::time::SimTime;

/// Handle through which a [`World`] schedules new events.
///
/// Wraps the event queue so the world cannot pop events or rewind time; it
/// can only append to the future. Backend-erased: the same world code runs
/// on the heap, the calendar or the adaptive queue.
pub struct Scheduler<'a, E> {
    queue: &'a mut dyn EventQueue<E>,
    now: SimTime,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative (via `SimTime` construction in the
    /// caller) — scheduling into the past is always a logic error.
    pub fn in_(&mut self, delay: SimTime, event: E) -> u64 {
        self.at(self.now + delay, event)
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn at(&mut self, at: SimTime, event: E) -> u64 {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?}, at={:?}",
            self.now,
            at
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` to fire immediately (at the current instant, after
    /// all events already queued for this instant).
    pub fn immediately(&mut self, event: E) -> u64 {
        self.queue.push(self.now, event)
    }
}

/// The model being simulated.
///
/// Implementors own all mutable state; the driver owns the clock and queue.
pub trait World {
    /// Event payload type.
    type Event;

    /// Handles one event at time `now`, scheduling follow-ups via `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);

    /// Called once before the first event is processed, to seed the queue.
    fn init(&mut self, sched: &mut Scheduler<'_, Self::Event>) {
        let _ = sched;
    }
}

/// Outcome of a [`Simulation::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Exhausted,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was consumed with events still pending.
    BudgetExhausted,
}

/// A discrete-event simulation: a [`World`] plus clock and queue.
///
/// Generic over the queue backend; the default is the self-tuning
/// [`AdaptiveQueue`]. Use [`Simulation::with_queue`] to pin a specific
/// backend (benchmarks, backend-differential tests).
pub struct Simulation<W: World, Q = AdaptiveQueue<<W as World>::Event>> {
    world: W,
    queue: Q,
    now: SimTime,
    processed: u64,
    /// High-water mark of pending events, sampled after each handled
    /// event — the queue-pressure figure the periodic-event work (load
    /// reports, noise redraws) dominates on huge farms.
    peak_pending: usize,
    initialized: bool,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero on the adaptive queue.
    pub fn new(world: W) -> Self {
        Self::with_queue(world, AdaptiveQueue::new())
    }
}

impl<W: World, Q: EventQueue<W::Event>> Simulation<W, Q> {
    /// Creates a simulation at time zero on a caller-chosen queue backend.
    pub fn with_queue(world: W, queue: Q) -> Self {
        Simulation {
            world,
            queue,
            now: SimTime::ZERO,
            processed: 0,
            peak_pending: 0,
            initialized: false,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The largest number of pending events observed after any handled
    /// event — the kernel's queue-pressure high-water mark.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for test setup between steps).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Immutable access to the queue backend (diagnostics, backend stats).
    pub fn queue(&self) -> &Q {
        &self.queue
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event from outside the world (setup code, tests).
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    fn ensure_init(&mut self) {
        if !self.initialized {
            self.initialized = true;
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: self.now,
            };
            self.world.init(&mut sched);
        }
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        self.ensure_init();
        let popped = {
            // The pop is the kernel's own share of every event: heap
            // sift, calendar scan or migration work all land here.
            let _sp = crate::prof::span(crate::prof::Phase::KernelPop);
            self.queue.pop()
        };
        let Some(entry) = popped else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "event queue returned a past event");
        self.now = entry.at;
        self.processed += 1;
        let mut sched = Scheduler {
            queue: &mut self.queue,
            now: self.now,
        };
        self.world.handle(self.now, entry.event, &mut sched);
        let pending = self.queue.len();
        if pending > self.peak_pending {
            self.peak_pending = pending;
        }
        true
    }

    /// Runs until the queue drains, the horizon passes, or `max_events`
    /// events have been processed (a safety net against runaway models).
    pub fn run(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.ensure_init();
        let mut budget = max_events;
        if horizon == SimTime::MAX {
            // No-horizon fast path: `step` already reports emptiness, so
            // skip the per-event `peek_time` — on the calendar backend a
            // peek repeats the same front scan the following pop performs,
            // doubling dequeue work on the run-to-completion hot loop.
            loop {
                if budget == 0 {
                    return if self.queue.is_empty() {
                        RunOutcome::Exhausted
                    } else {
                        RunOutcome::BudgetExhausted
                    };
                }
                if !self.step() {
                    return RunOutcome::Exhausted;
                }
                budget -= 1;
            }
        }
        loop {
            match self.queue.peek_time() {
                None => return RunOutcome::Exhausted,
                Some(t) if t > horizon => return RunOutcome::HorizonReached,
                Some(_) => {}
            }
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            budget -= 1;
            self.step();
        }
    }

    /// Runs to queue exhaustion with a default event budget of one billion.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run(SimTime::MAX, 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HeapQueue;
    use crate::CalendarQueue;

    /// A world that counts down: event `n` schedules event `n-1` one second
    /// later, until zero.
    struct Countdown {
        seen: Vec<(f64, u32)>,
    }

    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((now.as_secs(), ev));
            if ev > 0 {
                sched.in_(SimTime::from_secs(1.0), ev - 1);
            }
        }
    }

    #[test]
    fn countdown_runs_to_exhaustion() {
        let mut sim = Simulation::new(Countdown { seen: vec![] });
        sim.schedule(SimTime::from_secs(0.5), 3);
        let outcome = sim.run_to_completion();
        assert_eq!(outcome, RunOutcome::Exhausted);
        assert_eq!(
            sim.world().seen,
            vec![(0.5, 3), (1.5, 2), (2.5, 1), (3.5, 0)]
        );
        assert_eq!(sim.processed(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(3.5));
        assert_eq!(sim.peak_pending(), 1, "countdown keeps one event in flight");
    }

    /// The same model must behave identically on every backend: the
    /// driver's contract is queue-independent.
    #[test]
    fn backends_interchangeable_through_driver() {
        fn run_on<Q: EventQueue<u32>>(queue: Q) -> Vec<(f64, u32)> {
            let mut sim = Simulation::with_queue(Countdown { seen: vec![] }, queue);
            sim.schedule(SimTime::from_secs(0.5), 20);
            assert_eq!(sim.run_to_completion(), RunOutcome::Exhausted);
            sim.into_world().seen
        }
        let heap = run_on(HeapQueue::new());
        let cal = run_on(CalendarQueue::new());
        let ada = run_on(AdaptiveQueue::new());
        assert_eq!(heap, cal);
        assert_eq!(heap, ada);
    }

    #[test]
    fn horizon_stops_early() {
        let mut sim = Simulation::new(Countdown { seen: vec![] });
        sim.schedule(SimTime::ZERO, 100);
        let outcome = sim.run(SimTime::from_secs(5.0), u64::MAX);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at t=0..=5 processed; the next (t=6) is still queued.
        assert_eq!(sim.world().seen.len(), 6);
        assert_eq!(sim.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn budget_stops_early() {
        let mut sim = Simulation::new(Countdown { seen: vec![] });
        sim.schedule(SimTime::ZERO, 100);
        let outcome = sim.run(SimTime::MAX, 10);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(sim.processed(), 10);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut sim = Simulation::new(Countdown { seen: vec![] });
        assert!(!sim.step());
    }

    /// A world whose init seeds the first event.
    struct SelfStarting {
        fired: bool,
    }
    impl World for SelfStarting {
        type Event = ();
        fn init(&mut self, sched: &mut Scheduler<'_, ()>) {
            sched.at(SimTime::from_secs(1.0), ());
        }
        fn handle(&mut self, _now: SimTime, _ev: (), _sched: &mut Scheduler<'_, ()>) {
            self.fired = true;
        }
    }

    #[test]
    fn init_seeds_queue() {
        let mut sim = Simulation::new(SelfStarting { fired: false });
        sim.run_to_completion();
        assert!(sim.world().fired);
    }

    #[test]
    fn simultaneous_events_fifo_through_driver() {
        struct Recorder {
            order: Vec<u32>,
        }
        impl World for Recorder {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.order.push(ev);
                // Event 0 spawns two immediate events; they must run after
                // already-queued same-instant events.
                if ev == 0 {
                    sched.immediately(10);
                    sched.immediately(11);
                }
            }
        }
        let mut sim = Simulation::new(Recorder { order: vec![] });
        sim.schedule(SimTime::ZERO, 0);
        sim.schedule(SimTime::ZERO, 1);
        sim.run_to_completion();
        assert_eq!(sim.world().order, vec![0, 1, 10, 11]);
        // After event 0: event 1 plus the two spawned events are pending.
        assert_eq!(sim.peak_pending(), 3);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
                sched.at(now - SimTime::from_secs(1.0), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule(SimTime::from_secs(5.0), ());
        sim.run_to_completion();
    }
}

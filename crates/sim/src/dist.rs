//! Probability distributions used by the experiments.
//!
//! The paper draws inter-arrival gaps "from a Poisson distribution with a
//! mean of λ seconds"; we provide both a literal integer-valued Poisson and
//! the exponential that a Poisson *process* implies, and let the workload
//! layer choose (the experiments use [`Exponential`] by default, with
//! [`Poisson`] available for the literal reading — the resulting arrival
//! patterns are statistically indistinguishable at these rates).
//!
//! Noise on ground-truth resource speed is log-normal: multiplicative,
//! always positive, with median 1 — a standard model for machine-to-machine
//! run-time variability and the mechanism behind Table 1's ≈3 % prediction
//! error.

use crate::rng::RngStream;

/// Sampling interface so workload code can be generic over the gap
/// distribution.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut RngStream) -> f64;

    /// The distribution's mean, used in tests and for documentation output.
    fn mean(&self) -> f64;
}

/// Exponential distribution with the given mean (i.e. rate `1/mean`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// # Panics
    /// Panics unless `mean > 0` and finite.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive"
        );
        Exponential { mean }
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        // Inversion: -mean * ln(1 - U). `1 - U` is in (0, 1] so ln is finite.
        -self.mean * (1.0 - rng.uniform01()).ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Poisson distribution with the given mean, sampled with Knuth's product
/// method for small means and the PTRS transformed-rejection method of
/// Hörmann for large means (cutover at mean 30).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// # Panics
    /// Panics unless `mean > 0` and finite.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "poisson mean must be positive"
        );
        Poisson { mean }
    }

    fn sample_knuth(&self, rng: &mut RngStream) -> f64 {
        let l = (-self.mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.uniform01();
            if p <= l {
                return k as f64;
            }
            k += 1;
        }
    }

    fn sample_ptrs(&self, rng: &mut RngStream) -> f64 {
        // W. Hörmann, "The transformed rejection method for generating
        // Poisson random variables", 1993.
        let mu = self.mean;
        let b = 0.931 + 2.53 * mu.sqrt();
        let a = -0.059 + 0.02483 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        loop {
            let u = rng.uniform01() - 0.5;
            let v = rng.uniform01();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + mu + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let lhs = v.ln() * inv_alpha / (a / (us * us) + b);
            let rhs = -mu + k * mu.ln() - ln_factorial(k as u64);
            if lhs <= rhs {
                return k;
            }
        }
    }
}

impl Sample for Poisson {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        if self.mean < 30.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Normal distribution (Box–Muller; one value per draw, the pair's second
/// value is discarded to keep the stream's consumption pattern simple).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// # Panics
    /// Panics if `std < 0` or parameters are not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && std.is_finite() && mean.is_finite());
        Normal { mean, std }
    }

    /// A standard-normal draw.
    pub fn standard(rng: &mut RngStream) -> f64 {
        let u1 = (1.0 - rng.uniform01()).max(f64::MIN_POSITIVE);
        let u2 = rng.uniform01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.mean + self.std * Normal::standard(rng)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal multiplicative noise with median 1.
///
/// `sample()` returns `exp(sigma * Z)`; for small `sigma` the relative
/// standard deviation is approximately `sigma`. `sigma = 0` degenerates to
/// the constant 1 (useful to switch noise off in ablations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalNoise {
    sigma: f64,
}

impl LogNormalNoise {
    /// # Panics
    /// Panics if `sigma < 0` or not finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite());
        LogNormalNoise { sigma }
    }

    /// The shape parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Sample for LogNormalNoise {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        (self.sigma * Normal::standard(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.sigma * self.sigma / 2.0).exp()
    }
}

/// Natural log of `k!`, via Stirling's series for large `k`.
fn ln_factorial(k: u64) -> f64 {
    const TABLE: [f64; 10] = [
        0.0,
        0.0,
        std::f64::consts::LN_2, // ln 2!
        1.791_759_469_228_055,
        3.178_053_830_347_945_8,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
    ];
    if (k as usize) < TABLE.len() {
        return TABLE[k as usize];
    }
    let x = (k + 1) as f64;
    // Stirling: ln Γ(x) with the first correction terms.
    (x - 0.5) * x.ln() - x + 0.5 * (std::f64::consts::TAU).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StreamKind;

    fn rng() -> RngStream {
        RngStream::derive(0xC0FFEE, StreamKind::TaskSizes)
    }

    fn sample_mean<S: Sample>(dist: &S, n: usize, rng: &mut RngStream) -> f64 {
        (0..n).map(|_| dist.sample(rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(20.0);
        let m = sample_mean(&d, 200_000, &mut rng());
        assert!((m - 20.0).abs() < 0.3, "mean = {m}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn poisson_small_mean() {
        let d = Poisson::new(3.0);
        let m = sample_mean(&d, 100_000, &mut rng());
        assert!((m - 3.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn poisson_paper_rates() {
        // The two arrival rates used in the experiments.
        for target in [15.0, 20.0] {
            let d = Poisson::new(target);
            let m = sample_mean(&d, 100_000, &mut rng());
            assert!((m - target).abs() < 0.2, "mean {target}: got {m}");
        }
    }

    #[test]
    fn poisson_large_mean_ptrs_path() {
        let d = Poisson::new(200.0);
        let m = sample_mean(&d, 50_000, &mut rng());
        assert!((m - 200.0).abs() < 1.0, "mean = {m}");
    }

    #[test]
    fn poisson_variance_equals_mean() {
        let d = Poisson::new(15.0);
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 15.0).abs() < 0.5, "var = {var}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0);
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.03, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn lognormal_median_one_and_positive() {
        let d = LogNormalNoise::new(0.03);
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        assert!((median - 1.0).abs() < 0.01, "median = {median}");
        // Relative std ≈ sigma for small sigma.
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((std - 0.03).abs() < 0.005, "std = {std}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant_one() {
        let d = LogNormalNoise::new(0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 1.0);
        }
    }

    #[test]
    fn ln_factorial_matches_direct() {
        for k in 0..20u64 {
            let direct: f64 = (1..=k).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_factorial(k) - direct).abs() < 1e-8,
                "k = {k}: {} vs {direct}",
                ln_factorial(k)
            );
        }
        // Spot-check a large value against Stirling-independent identity:
        // ln(100!) ≈ 363.739375...
        assert!((ln_factorial(100) - 363.739_375_555_563_5).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_nonpositive_mean() {
        Exponential::new(0.0);
    }

    #[test]
    #[should_panic]
    fn poisson_rejects_nonpositive_mean() {
        Poisson::new(-1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::StreamKind;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn exponential_always_nonnegative(mean in 0.001f64..1000.0, seed: u64) {
            let d = Exponential::new(mean);
            let mut r = RngStream::derive(seed, StreamKind::Arrivals);
            for _ in 0..100 {
                prop_assert!(d.sample(&mut r) >= 0.0);
            }
        }

        #[test]
        fn poisson_always_nonnegative_integer(mean in 0.1f64..100.0, seed: u64) {
            let d = Poisson::new(mean);
            let mut r = RngStream::derive(seed, StreamKind::Arrivals);
            for _ in 0..50 {
                let x = d.sample(&mut r);
                prop_assert!(x >= 0.0);
                prop_assert_eq!(x.fract(), 0.0);
            }
        }

        #[test]
        fn lognormal_always_positive(sigma in 0.0f64..2.0, seed: u64) {
            let d = LogNormalNoise::new(sigma);
            let mut r = RngStream::derive(seed, StreamKind::CpuNoise(0));
            for _ in 0..100 {
                prop_assert!(d.sample(&mut r) > 0.0);
            }
        }
    }
}

//! Simulation time.
//!
//! Continuous time in seconds, stored as `f64` but wrapped so that:
//!
//! * NaN can never be constructed (checked in debug and release);
//! * `Ord` is implemented, so times can key a priority queue;
//! * arithmetic stays in the wrapper, making unit mistakes harder.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in seconds since the start of the simulation.
///
/// `SimTime` is also used for durations; the paper's model never needs to
/// distinguish the two and a single type keeps the arithmetic simple. The
/// invariant is that the inner value is always finite (not NaN, not ±∞):
/// every constructor checks it.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Largest representable time; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(f64::MAX);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or infinite — those are always logic errors
    /// in a simulation, and letting them into the event queue would silently
    /// corrupt event ordering.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite(), "SimTime must be finite, got {secs}");
        SimTime(secs)
    }

    /// Seconds since the simulation origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` if this time is the origin.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction: returns `ZERO` instead of a negative time.
    ///
    /// Useful for "remaining duration" computations where float rounding can
    /// produce a tiny negative remainder.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        if other.0 >= self.0 {
            SimTime::ZERO
        } else {
            SimTime(self.0 - other.0)
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// `true` if the two times differ by at most `eps` seconds.
    ///
    /// Completion dates computed along different event paths accumulate
    /// different rounding, so exact comparison of derived times is fragile;
    /// tests and the HTM synchronisation logic use this instead.
    #[inline]
    pub fn approx_eq(self, other: SimTime, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl Eq for SimTime {}

impl serde::Serialize for SimTime {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(self.0)
    }
}

impl<'de> serde::Deserialize<'de> for SimTime {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let secs = f64::deserialize(deserializer)?;
        if !secs.is_finite() {
            return Err(serde::de::Error::custom("SimTime must be finite"));
        }
        Ok(SimTime(secs))
    }
}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: the constructor guarantees the value is finite, so
        // partial_cmp can never return None.
        self.partial_cmp(other).expect("SimTime is always finite")
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}", prec, self.0)
        } else {
            write!(f, "{:.2}", self.0)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(12.5);
        assert_eq!(t.as_secs(), 12.5);
        assert!(!t.is_zero());
        assert!(SimTime::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = SimTime::from_secs(f64::INFINITY);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(1.5);
        assert_eq!((a + b).as_secs(), 4.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 2.0).as_secs(), 6.0);
        assert_eq!((a / 2.0).as_secs(), 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 4.5);
        c -= b;
        assert_eq!(c.as_secs(), 3.0);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(1.0 + 1e-10);
        assert!(a.approx_eq(b, 1e-9));
        assert!(!a.approx_eq(b, 1e-12));
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_secs(1.23456);
        assert_eq!(format!("{t}"), "1.23");
        assert_eq!(format!("{t:.4}"), "1.2346");
        assert_eq!(format!("{t:?}"), "1.234560s");
    }
}

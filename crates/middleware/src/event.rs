//! The event vocabulary of the grid world.

use cas_platform::{Phase, ServerId};
use cas_sim::Generation;

/// Events driving the client-agent-server simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum GridEvent {
    /// A client submits task `idx` (index into the metatask) to the agent.
    Submit {
        /// Index into the experiment's task list.
        idx: usize,
    },
    /// The agent runs the heuristic for task `idx`.
    Schedule {
        /// Index into the experiment's task list.
        idx: usize,
        /// Placement attempt number (1 = first try).
        attempt: u32,
        /// Servers that already refused this task (excluded from the
        /// candidate list on retries).
        excluded: Vec<ServerId>,
    },
    /// A phase-completion check on one server resource. Stale events
    /// (generation mismatch) are discarded: membership changed since this
    /// was scheduled.
    PhaseDone {
        /// The server whose resource fired.
        server: ServerId,
        /// Which of the three stage resources.
        phase: Phase,
        /// Generation of the resource when the event was scheduled.
        gen: Generation,
    },
    /// A transfer-completion check on the shared client link (only used
    /// when `ExperimentConfig::shared_client_link` is on).
    ClientLinkDone {
        /// Generation of the client link when the event was scheduled.
        gen: Generation,
    },
    /// Periodic monitor report from a server to the agent.
    LoadReport {
        /// The reporting server.
        server: ServerId,
    },
    /// Periodic **aggregated** monitor report: one kernel event refreshes
    /// every server in one shard's block (only used when
    /// `ExperimentConfig::aggregated_reports` is on). At 10k servers this
    /// turns O(n_servers) report events per period into O(n_shards).
    ShardLoadReport {
        /// The reporting shard (index into the router's `ShardMap`).
        shard: usize,
    },
    /// Periodic redraw of a server's ground-truth speed noise.
    NoiseRedraw {
        /// The affected server.
        server: ServerId,
    },
    /// A **brand-new** server is admitted to the running campaign: the
    /// world grows every per-server vector, the farm-wide cost table
    /// gains the pre-registered column, and the agent's owning shard
    /// engine joins it through the proven incremental pushes
    /// ([`cas_platform::CostTable::push_server`],
    /// [`cas_platform::StaticIndex::push_server`]). The column index
    /// points into the provision schedule declared before the run.
    ServerProvision {
        /// Index into the experiment's provision schedule.
        idx: usize,
    },
    /// A provisioned server (re)joins the farm: it becomes eligible for
    /// placement again and its runtime state starts fresh.
    ServerJoin {
        /// The joining server.
        server: ServerId,
    },
    /// A server leaves gracefully: it stops taking new work but its
    /// in-flight tasks drain to completion.
    ServerLeave {
        /// The departing server.
        server: ServerId,
    },
    /// A server crashes: its in-flight tasks are lost, retracted from the
    /// agent's model and re-dispatched through the normal decision
    /// pipeline (bounded retry budget, re-dispatch backoff).
    ServerCrash {
        /// The crashed server.
        server: ServerId,
    },
    /// A buffered task's admission deadline fired. If the task is still
    /// waiting in the admission buffer *and* its buffering generation
    /// matches (it was not dequeued and re-buffered since), it is shed
    /// with `DropReason::AdmissionDeadline`; otherwise the event is
    /// stale and ignored.
    AdmissionTimeout {
        /// Index into the experiment's task list.
        idx: usize,
        /// Admission generation of the task when the deadline was armed.
        gen: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable() {
        let a = GridEvent::Submit { idx: 1 };
        let b = GridEvent::Submit { idx: 1 };
        assert_eq!(a, b);
        let c = GridEvent::LoadReport {
            server: ServerId(0),
        };
        assert_ne!(a, c);
    }
}

//! Parallel experiment execution.
//!
//! A paper table cell is the mean over several executions of the same
//! metatask; a full table is |heuristics| × |seeds| runs. Runs are
//! independent, so they fan out over the process-wide work-stealing pool
//! ([`cas_sim::pool`]) — the same pool the HTM's batched predictions use,
//! so a sweep saturates the machine once instead of each layer spawning
//! scoped threads per call. Each replication writes into its own result
//! slot and the slots are collected in replication order afterwards, so
//! the reduction is deterministic regardless of which worker ran what.

use crate::config::ExperimentConfig;
use crate::engine::run_experiment;
use cas_core::heuristics::HeuristicKind;
use cas_metrics::{MetricSet, TaskRecord};
use cas_platform::{CostTable, ServerSpec, TaskInstance};

/// All runs of one heuristic over a set of workload seeds.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// The heuristic.
    pub kind: HeuristicKind,
    /// One record set per replication, in replication order.
    pub runs: Vec<Vec<TaskRecord>>,
}

impl MatrixResult {
    /// Metric sets of all replications.
    pub fn metrics(&self) -> Vec<MetricSet> {
        self.runs.iter().map(|r| MetricSet::compute(r)).collect()
    }

    /// Mean of one named metric across replications.
    pub fn mean_metric(&self, name: &str) -> f64 {
        let ms = self.metrics();
        let vals: Vec<f64> = ms.iter().filter_map(|m| m.by_name(name)).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Runs `replications` of the same configuration (differing only in the
/// experiment seed, `base_cfg.seed + i`) over `workloads[i]`, in parallel
/// on the shared work-stealing pool.
///
/// `workloads` supplies one task list per replication (the paper replays
/// the same metatask, so callers typically pass clones of one list or
/// per-seed variants). There is no worker-count knob any more: the pool
/// is process-wide and work-stealing, results land in per-replication
/// slots and are reduced in replication order, so the outcome is
/// bit-identical to [`run_replications_sequential`] regardless of
/// parallelism (the determinism differential test asserts exactly that).
pub fn run_replications(
    base_cfg: ExperimentConfig,
    costs: &CostTable,
    servers: &[ServerSpec],
    workloads: &[Vec<TaskInstance>],
) -> Vec<Vec<TaskRecord>> {
    let run_one = |i: usize| {
        let cfg = base_cfg.with_seed(base_cfg.seed.wrapping_add(i as u64));
        let records = run_experiment(cfg, costs.clone(), servers.to_vec(), workloads[i].clone());
        // Profiler spans land in the thread-locals of whichever thread
        // ran this replication; flushing here — still on that thread,
        // before the pool scope joins — is what makes
        // `prof::merged_snapshot` see a parallel campaign whole.
        cas_sim::prof::flush();
        records
    };
    if workloads.len() <= 1 {
        return (0..workloads.len()).map(run_one).collect();
    }
    let mut results: Vec<Option<Vec<TaskRecord>>> = vec![None; workloads.len()];
    cas_sim::pool::global().scope(|scope| {
        for (i, slot) in results.iter_mut().enumerate() {
            let run_one = &run_one;
            scope.spawn(move || *slot = Some(run_one(i)));
        }
    });
    // Deterministic reduction: slots are read back in replication order.
    results
        .into_iter()
        .map(|r| r.expect("every replication ran"))
        .collect()
}

/// Strictly in-order, single-threaded variant of [`run_replications`] —
/// the executable spec the parallel path is differentially tested
/// against, and the right tool when replications must not share the pool
/// (e.g. when timing one run).
pub fn run_replications_sequential(
    base_cfg: ExperimentConfig,
    costs: &CostTable,
    servers: &[ServerSpec],
    workloads: &[Vec<TaskInstance>],
) -> Vec<Vec<TaskRecord>> {
    (0..workloads.len())
        .map(|i| {
            let cfg = base_cfg.with_seed(base_cfg.seed.wrapping_add(i as u64));
            run_experiment(cfg, costs.clone(), servers.to_vec(), workloads[i].clone())
        })
        .collect()
}

/// Runs a full heuristic × replication matrix — one paper table.
pub fn run_heuristic_matrix(
    base_cfg: ExperimentConfig,
    heuristics: &[HeuristicKind],
    costs: &CostTable,
    servers: &[ServerSpec],
    workloads: &[Vec<TaskInstance>],
) -> Vec<MatrixResult> {
    heuristics
        .iter()
        .map(|&kind| MatrixResult {
            kind,
            runs: run_replications(base_cfg.with_heuristic(kind), costs, servers, workloads),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_platform::{PhaseCosts, Problem, ProblemId, TaskId};
    use cas_sim::SimTime;

    fn setup() -> (CostTable, Vec<ServerSpec>, Vec<TaskInstance>) {
        let mut costs = CostTable::new(2);
        costs.add_problem(
            Problem::new("p", 0.1, 0.1, 0.0),
            vec![
                Some(PhaseCosts::new(0.1, 5.0, 0.1)),
                Some(PhaseCosts::new(0.1, 15.0, 0.1)),
            ],
        );
        let servers = vec![
            ServerSpec::new("a", 1000.0, 512.0, 512.0),
            ServerSpec::new("b", 400.0, 512.0, 512.0),
        ];
        let tasks: Vec<TaskInstance> = (0..20)
            .map(|i| {
                TaskInstance::new(
                    TaskId(i as u64),
                    ProblemId(0),
                    SimTime::from_secs(i as f64 * 2.0),
                )
            })
            .collect();
        (costs, servers, tasks)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (costs, servers, tasks) = setup();
        let cfg = ExperimentConfig::paper(HeuristicKind::Msf, 11);
        let workloads: Vec<_> = (0..4).map(|_| tasks.clone()).collect();
        let par = run_replications(cfg, &costs, &servers, &workloads);
        let seq = run_replications_sequential(cfg, &costs, &servers, &workloads);
        assert_eq!(par, seq, "parallel fan-out must not change results");
    }

    #[test]
    fn replication_seeds_differ() {
        let (costs, servers, tasks) = setup();
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 3);
        let workloads: Vec<_> = (0..2).map(|_| tasks.clone()).collect();
        let runs = run_replications(cfg, &costs, &servers, &workloads);
        // Same workload, different noise seeds: records usually differ in
        // completion dates (noise) even when placements agree.
        assert_eq!(runs.len(), 2);
        assert_ne!(runs[0], runs[1]);
    }

    #[test]
    fn matrix_covers_all_heuristics() {
        let (costs, servers, tasks) = setup();
        let cfg = ExperimentConfig::paper(HeuristicKind::Mct, 5);
        let kinds = [HeuristicKind::Mct, HeuristicKind::Msf];
        let workloads = vec![tasks];
        let results = run_heuristic_matrix(cfg, &kinds, &costs, &servers, &workloads);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.runs.len(), 1);
            let m = &r.metrics()[0];
            assert_eq!(m.completed, 20);
            assert!(r.mean_metric("makespan") > 0.0);
        }
    }
}

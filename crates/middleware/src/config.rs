//! Experiment configuration.

use cas_core::heuristics::HeuristicKind;
use cas_core::{SelectorKind, SyncPolicy};
use cas_platform::MemoryModel;

/// What happens when a server refuses a task (memory exhaustion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTolerance {
    /// The client gives up: the task fails. This matches the paper's
    /// HTM-heuristic implementations at the high rate (Table 6: HMCT
    /// completes only 358/500).
    None,
    /// The client retries through the agent with the refusing server
    /// excluded, up to `max_attempts` total tries — "the NetSolve MCT has
    /// fault tolerance mechanisms that permit to schedule almost all
    /// tasks" (§5.1).
    RankedRetry {
        /// Total placement attempts allowed per task.
        max_attempts: u32,
    },
}

impl FaultTolerance {
    /// The paper's configuration for a given heuristic: NetSolve's MCT path
    /// retries; the prototype HTM heuristics did not.
    pub fn paper_default(kind: HeuristicKind) -> FaultTolerance {
        match kind {
            HeuristicKind::Mct => FaultTolerance::RankedRetry { max_attempts: 8 },
            _ => FaultTolerance::None,
        }
    }
}

/// All knobs of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// The scheduling policy under test.
    pub heuristic: HeuristicKind,
    /// Stage-1 candidate selection: which servers even get an HTM what-if
    /// query. [`SelectorKind::Exhaustive`] (the default) reproduces the
    /// paper's every-solver loop; `TopK`/`Adaptive` prune the candidate
    /// set from the incrementally maintained static index first.
    pub selector: SelectorKind,
    /// HTM ↔ reality synchronisation policy.
    pub sync: SyncPolicy,
    /// Root seed: drives ground-truth noise and tie-breaking. The workload
    /// itself is generated separately (its own seed) so the same metatask
    /// can be replayed under many heuristics.
    pub seed: u64,
    /// Server load-report period, seconds (NetSolve monitors report
    /// periodically; the agent's picture is stale in between).
    pub load_report_period: f64,
    /// Load-average damping time constant, seconds (UNIX 1-min: 60).
    pub load_tau: f64,
    /// σ of the multiplicative log-normal CPU/link speed noise
    /// (ground-truth realism; 0 disables noise). The paper's validation
    /// observed ≈3 % deviation between model and reality.
    pub noise_sigma: f64,
    /// How often ground-truth speed factors are redrawn, seconds.
    pub noise_redraw_period: f64,
    /// Agent processing latency per request, seconds (measured < 0.01 s in
    /// the paper).
    pub agent_latency: f64,
    /// Memory model for the servers.
    pub memory: MemoryModel,
    /// Behaviour on server refusal.
    pub fault_tolerance: FaultTolerance,
    /// When `true`, all input/output transfers of *all* servers share one
    /// client-side link, so any transfer interferes with any other — the
    /// paper's §6 communication model ("we assume that all tasks can create
    /// communication bandwidth interference for any other task"). When
    /// `false` (default), each server has its own independent link pair, as
    /// the HTM models. The gap between the two is an ablation
    /// (`ablation_htm`): the HTM stays per-server either way, so enabling
    /// this measures the cost of that modelling simplification.
    pub shared_client_link: bool,
}

impl ExperimentConfig {
    /// Baseline configuration used by the paper-table experiments: noise at
    /// 3 %, 30 s load reports, 60 s load damping, memory model on, paper
    /// fault-tolerance defaults for the heuristic.
    pub fn paper(heuristic: HeuristicKind, seed: u64) -> Self {
        ExperimentConfig {
            heuristic,
            selector: SelectorKind::Exhaustive,
            sync: SyncPolicy::None,
            seed,
            load_report_period: 30.0,
            load_tau: 60.0,
            noise_sigma: 0.03,
            noise_redraw_period: 20.0,
            agent_latency: 0.005,
            memory: MemoryModel::default(),
            fault_tolerance: FaultTolerance::paper_default(heuristic),
            shared_client_link: false,
        }
    }

    /// Noise-free, memory-free, instant-information variant: the idealised
    /// environment where the HTM should be *exact* (used by unit tests and
    /// the validation harness's control arm).
    pub fn ideal(heuristic: HeuristicKind, seed: u64) -> Self {
        ExperimentConfig {
            heuristic,
            selector: SelectorKind::Exhaustive,
            sync: SyncPolicy::None,
            seed,
            load_report_period: 5.0,
            load_tau: 10.0,
            noise_sigma: 0.0,
            noise_redraw_period: 1e6,
            agent_latency: 0.0,
            memory: MemoryModel::disabled(),
            fault_tolerance: FaultTolerance::None,
            shared_client_link: false,
        }
    }

    /// Returns a copy with a different heuristic (and that heuristic's
    /// paper fault-tolerance default).
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self.fault_tolerance = FaultTolerance::paper_default(heuristic);
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different stage-1 candidate selector.
    pub fn with_selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ExperimentConfig::paper(HeuristicKind::Mct, 1);
        assert_eq!(
            c.fault_tolerance,
            FaultTolerance::RankedRetry { max_attempts: 8 }
        );
        assert!(c.memory.enabled);
        let c = ExperimentConfig::paper(HeuristicKind::Hmct, 1);
        assert_eq!(c.fault_tolerance, FaultTolerance::None);
    }

    #[test]
    fn ideal_is_noise_free() {
        let c = ExperimentConfig::ideal(HeuristicKind::Msf, 1);
        assert_eq!(c.noise_sigma, 0.0);
        assert!(!c.memory.enabled);
        assert_eq!(c.agent_latency, 0.0);
    }

    #[test]
    fn with_heuristic_updates_fault_tolerance() {
        let c = ExperimentConfig::paper(HeuristicKind::Hmct, 1).with_heuristic(HeuristicKind::Mct);
        assert!(matches!(
            c.fault_tolerance,
            FaultTolerance::RankedRetry { .. }
        ));
        assert_eq!(c.with_seed(9).seed, 9);
    }
}

//! Experiment configuration.

use cas_core::heuristics::HeuristicKind;
use cas_core::{SelectorKind, Stage2Mode, SyncPolicy};
use cas_platform::{IndexScoring, MemoryModel, RankingsBackend, ShardMap};

/// How the agent's decision state is partitioned across the farm.
///
/// `Single` is the paper's one-agent configuration and the executable
/// spec. The federated variants split the farm into shards behind
/// `cas_middleware`'s deterministic router; `Federated { shards: 1 }`
/// runs the full router machinery over one shard and is proven
/// bit-identical to `Single` by the differential tests (so `--shards 1`
/// is a safe way to exercise the router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sharding {
    /// One engine owns the whole farm (the unsharded path).
    #[default]
    Single,
    /// Shard count picked from the platform size
    /// ([`ShardMap::auto_shards`]): deterministic in the farm alone,
    /// never in the host.
    Auto {
        /// Shards-per-group fan-out of the two-level skyline tree
        /// (`--shards auto:GROUPSIZE`); `None` takes the router default
        /// ([`cas_platform::ShardTree::DEFAULT_GROUP_SHARDS`]).
        group_size: Option<usize>,
    },
    /// Explicit shard count (clamped to the farm size).
    Federated {
        /// Number of shards (≥ 1).
        shards: usize,
    },
}

impl Sharding {
    /// The auto mode with the default group fan-out (what bare
    /// `--shards auto` means).
    pub const AUTO: Sharding = Sharding::Auto { group_size: None };

    /// Parses `auto`, `auto:GROUPSIZE` (group fan-out ≥ 1) or a shard
    /// count ≥ 1 (the `--shards` grammar).
    pub fn parse(s: &str) -> Option<Sharding> {
        if s.eq_ignore_ascii_case("auto") {
            return Some(Sharding::AUTO);
        }
        if let Some(gs) = s
            .get(..5)
            .filter(|p| p.eq_ignore_ascii_case("auto:"))
            .map(|_| &s[5..])
        {
            return gs
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(|n| Sharding::Auto {
                    group_size: Some(n),
                });
        }
        s.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .map(|shards| Sharding::Federated { shards })
    }

    /// The shard count to run an `n_servers` farm with, or `None` for the
    /// single-agent path.
    pub fn resolve(self, n_servers: usize) -> Option<usize> {
        match self {
            Sharding::Single => None,
            Sharding::Auto { .. } => Some(ShardMap::auto_shards(n_servers)),
            Sharding::Federated { shards } => Some(shards.clamp(1, n_servers.max(1))),
        }
    }

    /// The group fan-out override carried by `auto:GROUPSIZE`, if any.
    pub fn group_size(self) -> Option<usize> {
        match self {
            Sharding::Auto { group_size } => group_size,
            _ => None,
        }
    }
}

/// What happens when a server refuses a task (memory exhaustion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTolerance {
    /// The client gives up: the task fails. This matches the paper's
    /// HTM-heuristic implementations at the high rate (Table 6: HMCT
    /// completes only 358/500).
    None,
    /// The client retries through the agent with the refusing server
    /// excluded, up to `max_attempts` total tries — "the NetSolve MCT has
    /// fault tolerance mechanisms that permit to schedule almost all
    /// tasks" (§5.1).
    RankedRetry {
        /// Total placement attempts allowed per task.
        max_attempts: u32,
    },
}

impl FaultTolerance {
    /// The paper's configuration for a given heuristic: NetSolve's MCT path
    /// retries; the prototype HTM heuristics did not.
    pub fn paper_default(kind: HeuristicKind) -> FaultTolerance {
        match kind {
            HeuristicKind::Mct => FaultTolerance::RankedRetry { max_attempts: 8 },
            _ => FaultTolerance::None,
        }
    }
}

/// All knobs of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// The scheduling policy under test.
    pub heuristic: HeuristicKind,
    /// Stage-1 candidate selection: which servers even get an HTM what-if
    /// query. [`SelectorKind::Exhaustive`] (the default) reproduces the
    /// paper's every-solver loop; `TopK`/`Adaptive` prune the candidate
    /// set from the incrementally maintained static index first.
    pub selector: SelectorKind,
    /// How the agent's decision state is partitioned across the farm:
    /// the single-agent path (default) or a shard federation behind the
    /// deterministic router.
    pub shards: Sharding,
    /// Which static proxy orders the stage-1 index: predicted remaining
    /// work (default) or the count-based baseline.
    pub index_scoring: IndexScoring,
    /// Which data structure stores the stage-1 rankings
    /// (`--rankings flat|btree`, default flat): the cache-friendly flat
    /// ladder, or the original per-problem `BTreeSet` — the executable
    /// spec the flat backend is differentially proven bit-identical to.
    pub rankings: RankingsBackend,
    /// Which stage-2 drain engine answers what-if queries
    /// (`--stage2 full|fast`, default fast): truncated prefix-sharing
    /// drains with the parallel scatter, or the pre-optimisation
    /// engine kept as the executable spec the fast path is
    /// differentially proven bit-identical to.
    pub stage2: Stage2Mode,
    /// Lazy federation merge (`--skyline on|off`, default on): the router
    /// visits shards in skyline order and skips shards whose best stage-1
    /// score provably cannot reach the merged shortlist. A pure pruning
    /// of the merge — decisions are bit-identical either way (proven by
    /// the differential harness) — so `false` exists only as the
    /// executable-spec arm of those differential runs. Ignored by the
    /// single-agent path and by exhaustive selectors (which always take
    /// the full union).
    pub skyline: bool,
    /// Collapse the periodic per-server load-report events into one
    /// aggregated event per shard (default off): each firing refreshes
    /// the whole shard block in a single kernel event, cutting report
    /// queue pressure from O(n_servers) to O(n_shards) per period on
    /// huge farms. Changes *when* reports refresh (a shard's servers
    /// report together at the shard's phase instead of staggered
    /// per-server), so it is a config knob rather than a sharding
    /// side-effect — the S = 1 ≡ Single invariant is stated at equal
    /// report modes.
    pub aggregated_reports: bool,
    /// HTM ↔ reality synchronisation policy.
    pub sync: SyncPolicy,
    /// Root seed: drives ground-truth noise and tie-breaking. The workload
    /// itself is generated separately (its own seed) so the same metatask
    /// can be replayed under many heuristics.
    pub seed: u64,
    /// Server load-report period, seconds (NetSolve monitors report
    /// periodically; the agent's picture is stale in between).
    pub load_report_period: f64,
    /// Load-average damping time constant, seconds (UNIX 1-min: 60).
    pub load_tau: f64,
    /// σ of the multiplicative log-normal CPU/link speed noise
    /// (ground-truth realism; 0 disables noise). The paper's validation
    /// observed ≈3 % deviation between model and reality.
    pub noise_sigma: f64,
    /// How often ground-truth speed factors are redrawn, seconds.
    pub noise_redraw_period: f64,
    /// Agent processing latency per request, seconds (measured < 0.01 s in
    /// the paper).
    pub agent_latency: f64,
    /// Memory model for the servers.
    pub memory: MemoryModel,
    /// Behaviour on server refusal.
    pub fault_tolerance: FaultTolerance,
    /// When `true`, all input/output transfers of *all* servers share one
    /// client-side link, so any transfer interferes with any other — the
    /// paper's §6 communication model ("we assume that all tasks can create
    /// communication bandwidth interference for any other task"). When
    /// `false` (default), each server has its own independent link pair, as
    /// the HTM models. The gap between the two is an ablation
    /// (`ablation_htm`): the HTM stays per-server either way, so enabling
    /// this measures the cost of that modelling simplification.
    pub shared_client_link: bool,
    /// Mean time between failures per server, seconds
    /// (`f64::INFINITY`, the default, freezes the farm: no churn events
    /// are scheduled and no churn RNG stream is derived, so the run is
    /// bit-identical to a pre-lifecycle build).
    pub mtbf: f64,
    /// Mean time to repair after a crash, seconds.
    pub mttr: f64,
    /// Seed of the fault schedule, independent of `seed` so the same
    /// world can be replayed under different fault schedules.
    pub churn_seed: u64,
    /// Delay before a crash-retracted task re-enters the decision
    /// pipeline, seconds (a client would not observe the failure and
    /// resubmit instantaneously).
    pub redispatch_backoff: f64,
    /// Total dispatch attempts allowed per task across crash
    /// re-dispatches; beyond it the task is dropped with a reason code.
    pub redispatch_budget: u32,
    /// Backpressure: maximum tasks concurrently admitted past the
    /// agent's admission gate. `0` (the default) disables admission
    /// control entirely — submissions go straight to the decision
    /// pipeline and the run is bit-identical to a pre-backpressure
    /// build.
    pub admission_capacity: usize,
    /// Bounded admission-buffer size: tasks arriving while the gate is
    /// full wait here; arrivals beyond this bound are shed immediately
    /// with `DropReason::AdmissionDeadline`.
    pub admission_buffer: usize,
    /// Seconds a task may wait in the admission buffer before being
    /// shed with `DropReason::AdmissionDeadline`
    /// (`f64::INFINITY` = wait forever).
    pub admission_deadline: f64,
}

impl ExperimentConfig {
    /// Baseline configuration used by the paper-table experiments: noise at
    /// 3 %, 30 s load reports, 60 s load damping, memory model on, paper
    /// fault-tolerance defaults for the heuristic.
    pub fn paper(heuristic: HeuristicKind, seed: u64) -> Self {
        ExperimentConfig {
            heuristic,
            selector: SelectorKind::Exhaustive,
            shards: Sharding::Single,
            index_scoring: IndexScoring::RemainingWork,
            rankings: RankingsBackend::Flat,
            stage2: Stage2Mode::Fast,
            skyline: true,
            aggregated_reports: false,
            sync: SyncPolicy::None,
            seed,
            load_report_period: 30.0,
            load_tau: 60.0,
            noise_sigma: 0.03,
            noise_redraw_period: 20.0,
            agent_latency: 0.005,
            memory: MemoryModel::default(),
            fault_tolerance: FaultTolerance::paper_default(heuristic),
            shared_client_link: false,
            mtbf: f64::INFINITY,
            mttr: 60.0,
            churn_seed: 0,
            redispatch_backoff: 1.0,
            redispatch_budget: 8,
            admission_capacity: 0,
            admission_buffer: 0,
            admission_deadline: f64::INFINITY,
        }
    }

    /// Noise-free, memory-free, instant-information variant: the idealised
    /// environment where the HTM should be *exact* (used by unit tests and
    /// the validation harness's control arm).
    pub fn ideal(heuristic: HeuristicKind, seed: u64) -> Self {
        ExperimentConfig {
            heuristic,
            selector: SelectorKind::Exhaustive,
            shards: Sharding::Single,
            index_scoring: IndexScoring::RemainingWork,
            rankings: RankingsBackend::Flat,
            stage2: Stage2Mode::Fast,
            skyline: true,
            aggregated_reports: false,
            sync: SyncPolicy::None,
            seed,
            load_report_period: 5.0,
            load_tau: 10.0,
            noise_sigma: 0.0,
            noise_redraw_period: 1e6,
            agent_latency: 0.0,
            memory: MemoryModel::disabled(),
            fault_tolerance: FaultTolerance::None,
            shared_client_link: false,
            mtbf: f64::INFINITY,
            mttr: 60.0,
            churn_seed: 0,
            redispatch_backoff: 1.0,
            redispatch_budget: 8,
            admission_capacity: 0,
            admission_buffer: 0,
            admission_deadline: f64::INFINITY,
        }
    }

    /// Returns a copy with a different heuristic (and that heuristic's
    /// paper fault-tolerance default).
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self.fault_tolerance = FaultTolerance::paper_default(heuristic);
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different stage-1 candidate selector.
    pub fn with_selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// Returns a copy with a different sharding mode.
    pub fn with_shards(mut self, shards: Sharding) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with a different stage-1 index scoring proxy.
    pub fn with_index_scoring(mut self, scoring: IndexScoring) -> Self {
        self.index_scoring = scoring;
        self
    }

    /// Returns a copy with a different stage-1 ranking storage backend.
    pub fn with_rankings(mut self, rankings: RankingsBackend) -> Self {
        self.rankings = rankings;
        self
    }

    /// Returns a copy with a different stage-2 drain engine (differential
    /// runs pin `Full` to replay the pre-optimisation engine).
    pub fn with_stage2(mut self, stage2: Stage2Mode) -> Self {
        self.stage2 = stage2;
        self
    }

    /// Returns a copy with the skyline lazy merge toggled (differential
    /// runs pin it off to replay the eager full-scatter router).
    pub fn with_skyline(mut self, skyline: bool) -> Self {
        self.skyline = skyline;
        self
    }

    /// Returns a copy with aggregated per-shard load reports toggled.
    pub fn with_aggregated_reports(mut self, aggregated: bool) -> Self {
        self.aggregated_reports = aggregated;
        self
    }

    /// Returns a copy with fault injection enabled: mean time between
    /// failures and mean time to repair, seconds. `mtbf = f64::INFINITY`
    /// keeps the farm frozen.
    pub fn with_churn(mut self, mtbf: f64, mttr: f64) -> Self {
        self.mtbf = mtbf;
        self.mttr = mttr;
        self
    }

    /// Returns a copy with a different fault-schedule seed.
    pub fn with_churn_seed(mut self, churn_seed: u64) -> Self {
        self.churn_seed = churn_seed;
        self
    }

    /// Returns a copy with admission backpressure enabled: at most
    /// `capacity` tasks concurrently past the gate, at most `buffer`
    /// waiting behind it, each for at most `deadline` seconds before
    /// being shed with `DropReason::AdmissionDeadline`.
    pub fn with_admission(mut self, capacity: usize, buffer: usize, deadline: f64) -> Self {
        self.admission_capacity = capacity;
        self.admission_buffer = buffer;
        self.admission_deadline = deadline;
        self
    }

    /// Whether admission backpressure is on (`admission_capacity > 0`).
    pub fn admission_enabled(&self) -> bool {
        self.admission_capacity > 0
    }

    /// The churn model this configuration describes (disabled when
    /// `mtbf` is infinite).
    pub fn churn_model(&self) -> cas_workload::ChurnModel {
        cas_workload::ChurnModel {
            mtbf: self.mtbf,
            mttr: self.mttr,
            seed: self.churn_seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ExperimentConfig::paper(HeuristicKind::Mct, 1);
        assert_eq!(
            c.fault_tolerance,
            FaultTolerance::RankedRetry { max_attempts: 8 }
        );
        assert!(c.memory.enabled);
        let c = ExperimentConfig::paper(HeuristicKind::Hmct, 1);
        assert_eq!(c.fault_tolerance, FaultTolerance::None);
    }

    #[test]
    fn ideal_is_noise_free() {
        let c = ExperimentConfig::ideal(HeuristicKind::Msf, 1);
        assert_eq!(c.noise_sigma, 0.0);
        assert!(!c.memory.enabled);
        assert_eq!(c.agent_latency, 0.0);
    }

    #[test]
    fn sharding_parse_and_resolve() {
        assert_eq!(Sharding::parse("auto"), Some(Sharding::AUTO));
        assert_eq!(Sharding::parse("AUTO"), Some(Sharding::AUTO));
        assert_eq!(
            Sharding::parse("auto:4"),
            Some(Sharding::Auto {
                group_size: Some(4)
            })
        );
        assert_eq!(
            Sharding::parse("AUTO:2"),
            Some(Sharding::Auto {
                group_size: Some(2)
            })
        );
        assert_eq!(Sharding::parse("auto:0"), None);
        assert_eq!(Sharding::parse("auto:"), None);
        assert_eq!(Sharding::parse("auto:x"), None);
        assert_eq!(
            Sharding::parse("4"),
            Some(Sharding::Federated { shards: 4 })
        );
        assert_eq!(Sharding::parse("0"), None);
        assert_eq!(Sharding::parse("-1"), None);
        assert_eq!(Sharding::parse("many"), None);
        assert_eq!(Sharding::Single.resolve(10_000), None);
        assert_eq!(Sharding::AUTO.resolve(10_000), Some(16));
        assert_eq!(Sharding::AUTO.resolve(100), Some(1));
        assert_eq!(Sharding::AUTO.group_size(), None);
        assert_eq!(Sharding::parse("auto:4").unwrap().group_size(), Some(4));
        assert_eq!(Sharding::parse("auto:4").unwrap().resolve(10_000), Some(16));
        assert_eq!(Sharding::Federated { shards: 4 }.group_size(), None);
        assert_eq!(
            Sharding::Federated { shards: 64 }.resolve(8),
            Some(8),
            "clamped so no shard is empty"
        );
        let c = ExperimentConfig::paper(HeuristicKind::Hmct, 1);
        assert_eq!(c.shards, Sharding::Single);
        assert_eq!(c.index_scoring, IndexScoring::RemainingWork);
        assert_eq!(c.with_shards(Sharding::AUTO).shards, Sharding::AUTO);
        assert_eq!(
            c.with_index_scoring(IndexScoring::ActiveCount)
                .index_scoring,
            IndexScoring::ActiveCount
        );
    }

    #[test]
    fn churn_defaults_to_frozen_farm() {
        let c = ExperimentConfig::paper(HeuristicKind::Hmct, 1);
        assert!(c.mtbf.is_infinite());
        assert!(!c.churn_model().enabled());
        let c = c.with_churn(400.0, 60.0).with_churn_seed(9);
        assert_eq!(c.mtbf, 400.0);
        assert_eq!(c.mttr, 60.0);
        assert_eq!(c.churn_seed, 9);
        assert!(c.churn_model().enabled());
        assert_eq!(c.redispatch_budget, 8);
        assert_eq!(c.redispatch_backoff, 1.0);
    }

    #[test]
    fn admission_defaults_off_and_builder_arms_it() {
        let c = ExperimentConfig::paper(HeuristicKind::Hmct, 1);
        assert!(!c.admission_enabled());
        assert_eq!(c.admission_capacity, 0);
        assert_eq!(c.admission_buffer, 0);
        assert!(c.admission_deadline.is_infinite());
        assert!(!ExperimentConfig::ideal(HeuristicKind::Mct, 1).admission_enabled());
        let c = c.with_admission(4, 32, 120.0);
        assert!(c.admission_enabled());
        assert_eq!(c.admission_capacity, 4);
        assert_eq!(c.admission_buffer, 32);
        assert_eq!(c.admission_deadline, 120.0);
    }

    #[test]
    fn with_heuristic_updates_fault_tolerance() {
        let c = ExperimentConfig::paper(HeuristicKind::Hmct, 1).with_heuristic(HeuristicKind::Mct);
        assert!(matches!(
            c.fault_tolerance,
            FaultTolerance::RankedRetry { .. }
        ));
        assert_eq!(c.with_seed(9).seed, 9);
    }
}

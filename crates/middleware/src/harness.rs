//! The differential-equivalence harness.
//!
//! Every structural optimisation of the decision stack in this repo —
//! incremental HTM repair, the two-stage candidate pipeline, the shard
//! federation, and now the lazy skyline merge — ships with the same kind
//! of proof: drive the optimised implementation and its executable
//! specification through arbitrary interleavings of
//! decide / commit / retract / complete and demand **bit-identical**
//! picks, predictions and resting model state. This module is that proof
//! engine, factored out once so the federation's proptests, the skyline
//! differential tests and any future integration test share one
//! definition of "equivalent".
//!
//! Two pieces:
//!
//! * [`DecisionAgent`] — the minimal surface a decision stack must offer
//!   to be diffed: one two-stage decision (returning the pick *and* the
//!   winning prediction), the three model-mutation hooks, and the
//!   resting simulated-completion map. Implemented by [`AgentRouter`]
//!   (any shard count, skyline on or off) and by
//!   [`SingleAgentReference`], the inline replica of the pre-federation
//!   single-agent loop kept as the specification.
//! * [`DiffHarness`] — owns the static world (cost table, initial load
//!   reports, admission limits) and replays an [`Op`] sequence against
//!   two agents in lockstep, returning a description of the first
//!   divergence. Proptests feed it generated op vectors; fixed unit
//!   tests feed it hand-built edge cases.
//!
//! The op encoding is deliberately dumb (five scalars) so proptest
//! strategies stay trivial and failures minimise well.

use crate::shard::DecisionInputs;
use crate::AgentRouter;
use cas_core::heuristics::{DecisionMemo, Heuristic, HeuristicKind, SchedView};
use cas_core::selector::{CandidateSelector, SelectorInput};
use cas_core::{Htm, Prediction, SelectorKind, SyncPolicy};
use cas_platform::{CostTable, LoadReport, ProblemId, ServerId, StaticIndex, TaskId, TaskInstance};
use cas_sim::{RngStream, SimTime, StreamKind};
use std::collections::HashMap;

/// One step of a differential run. `kind` selects the operation:
/// `0..=5` a decision round (the value also rotates the heuristic),
/// `6 | 7` a commit, `8` a retract of the most recent commit, `10` a
/// server crash (every in-flight commit on `server` is retracted, then
/// the server goes down), `11` a repair (the server comes back up),
/// anything else a completion of the oldest commit.
#[derive(Debug, Clone, Copy)]
pub struct Op {
    /// Operation selector (see type docs).
    pub kind: u32,
    /// Preferred commit target (falls back to the problem's first solver
    /// when it cannot solve the problem).
    pub server: u32,
    /// Problem of the decision probe or committed task.
    pub problem: u32,
    /// Seconds to advance the clock before the operation (must be ≥ 0).
    pub gap: f64,
    /// Server excluded by the decision's admit filter (models a retry
    /// exclusion or a known-dead server).
    pub excl: u32,
}

impl From<(u32, u32, u32, f64, u32)> for Op {
    fn from((kind, server, problem, gap, excl): (u32, u32, u32, f64, u32)) -> Self {
        Op {
            kind,
            server,
            problem,
            gap,
            excl,
        }
    }
}

/// The surface a decision stack exposes to the harness.
pub trait DecisionAgent {
    /// Runs one full two-stage decision; returns the pick and the
    /// winning server's prediction (both sides of a diff must agree on
    /// both, bit for bit).
    fn decide(
        &mut self,
        inp: DecisionInputs<'_>,
        heuristic: &mut dyn Heuristic,
        tie_rng: &mut RngStream,
    ) -> Option<(ServerId, Prediction)>;

    /// A task was committed to `server` with service demand `work`.
    fn commit(&mut self, now: SimTime, server: ServerId, task: &TaskInstance, work: f64);

    /// A committed task was retracted before running.
    fn retract(&mut self, now: SimTime, server: ServerId, task: TaskId, work: f64);

    /// A committed task completed (`observed` / `predicted` are flows —
    /// durations since arrival — feeding the selector's stretch signal).
    fn complete(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: TaskId,
        work: f64,
        observed: f64,
        predicted: f64,
    );

    /// The resting model state: simulated completion date of every
    /// committed task.
    fn completions(&self) -> HashMap<TaskId, SimTime>;

    /// `server` went down (`up = false`) or came back (`up = true`):
    /// stage-1 rankings must drop or re-admit it. The harness also
    /// excludes down servers through the decision's admit filter, the
    /// way the engine's liveness vector does.
    fn set_available(&mut self, server: ServerId, up: bool);
}

impl DecisionAgent for AgentRouter {
    fn decide(
        &mut self,
        inp: DecisionInputs<'_>,
        heuristic: &mut dyn Heuristic,
        tie_rng: &mut RngStream,
    ) -> Option<(ServerId, Prediction)> {
        let now = inp.now;
        let task = inp.task;
        let pick = AgentRouter::decide(self, inp, heuristic, tie_rng)?;
        let p = self
            .predict(now, pick, &task)
            .expect("picked server is solvable");
        Some((pick, p))
    }

    fn commit(&mut self, now: SimTime, server: ServerId, task: &TaskInstance, work: f64) {
        self.on_commit(now, server, task, work);
    }

    fn retract(&mut self, now: SimTime, server: ServerId, task: TaskId, work: f64) {
        self.on_retract(now, server, task, work);
    }

    fn complete(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: TaskId,
        work: f64,
        observed: f64,
        predicted: f64,
    ) {
        self.on_complete(now, server, task, work, observed, predicted);
    }

    fn completions(&self) -> HashMap<TaskId, SimTime> {
        self.simulated_completions()
    }

    fn set_available(&mut self, server: ServerId, up: bool) {
        AgentRouter::set_available(self, server, up);
    }
}

/// The single-agent decision loop, replicated inline: one farm-wide HTM,
/// one index, one selector — the pre-federation `engine` path, kept as
/// the executable specification every router configuration is diffed
/// against.
pub struct SingleAgentReference {
    htm: Htm,
    index: StaticIndex,
    selector: Box<dyn CandidateSelector>,
    memo: DecisionMemo,
}

impl SingleAgentReference {
    /// Builds the reference over the full cost table.
    pub fn new(costs: &CostTable, selector: SelectorKind, sync: SyncPolicy) -> Self {
        SingleAgentReference {
            htm: Htm::new(costs.clone(), sync),
            index: StaticIndex::new(costs),
            selector: selector.build(),
            memo: DecisionMemo::new(),
        }
    }
}

impl DecisionAgent for SingleAgentReference {
    fn decide(
        &mut self,
        inp: DecisionInputs<'_>,
        heuristic: &mut dyn Heuristic,
        tie_rng: &mut RngStream,
    ) -> Option<(ServerId, Prediction)> {
        let mut candidates = Vec::new();
        self.selector.shortlist(
            SelectorInput {
                problem: inp.task.problem,
                costs: inp.costs,
                index: &self.index,
            },
            &|s| (inp.admit)(s),
            &mut candidates,
        );
        let picked = {
            let mut view = SchedView::new(
                inp.now,
                inp.task,
                candidates,
                inp.costs,
                inp.reports,
                &mut self.htm,
                tie_rng,
            )
            .with_server_mem(inp.server_mem)
            .with_memo(&mut self.memo);
            let pick = heuristic.select(&mut view)?;
            let p = view.predict(pick).cloned().expect("picked is solvable");
            (pick, p)
        };
        self.selector.observe_selection(picked.0);
        Some(picked)
    }

    fn commit(&mut self, now: SimTime, server: ServerId, task: &TaskInstance, work: f64) {
        self.htm.commit(now, server, task);
        self.index.on_commit(server, work);
    }

    fn retract(&mut self, now: SimTime, server: ServerId, task: TaskId, work: f64) {
        self.htm.retract(now, task);
        self.index.on_retract(server, work);
    }

    fn complete(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: TaskId,
        work: f64,
        observed: f64,
        predicted: f64,
    ) {
        self.index.on_complete(server, work);
        self.htm.observe_completion(now, task);
        self.selector.observe_outcome(observed, predicted);
    }

    fn completions(&self) -> HashMap<TaskId, SimTime> {
        self.htm.simulated_completions()
    }

    fn set_available(&mut self, server: ServerId, up: bool) {
        self.index.set_available(server, up);
    }
}

/// The static world shared by both sides of a differential run.
pub struct DiffHarness {
    table: CostTable,
    reports: Vec<LoadReport>,
    server_mem: Vec<f64>,
}

impl DiffHarness {
    /// A harness over `table` with fresh initial load reports and a flat
    /// 512 MB admission limit per server.
    pub fn new(table: CostTable) -> Self {
        let n = table.n_servers();
        DiffHarness {
            reports: (0..n as u32)
                .map(|i| LoadReport::initial(ServerId(i)))
                .collect(),
            server_mem: vec![512.0; n],
            table,
        }
    }

    /// The cost table the harness was built over.
    pub fn table(&self) -> &CostTable {
        &self.table
    }

    /// Replays `ops` against both agents in lockstep from a fresh
    /// session. Returns `Err` with a human-readable description at the
    /// first divergence: a pick, a winning prediction, a one-sided
    /// failure, or (after the full sequence) the resting
    /// simulated-completion maps. Use [`DiffHarness::session`] to replay
    /// in instalments (inspecting agent state between them).
    pub fn run(
        &self,
        a: &mut dyn DecisionAgent,
        b: &mut dyn DecisionAgent,
        ops: &[Op],
    ) -> Result<(), String> {
        let mut session = self.session();
        session.run(a, b, ops)?;
        session.finish(a, b)
    }

    /// Starts a resumable differential session: clock, task-id sequence,
    /// the in-flight commit ledger and the down-server set persist
    /// across `run` calls.
    pub fn session(&self) -> DiffSession<'_> {
        DiffSession {
            harness: self,
            now: 0.0,
            next_id: 0,
            committed: Vec::new(),
            down: vec![false; self.table.n_servers()],
            step: 0,
        }
    }
}

/// An in-progress differential replay (see [`DiffHarness::session`]).
pub struct DiffSession<'a> {
    harness: &'a DiffHarness,
    now: f64,
    next_id: u64,
    committed: Vec<(TaskId, ServerId, f64)>,
    /// Servers taken down by crash ops (kind 10) and not yet repaired
    /// (kind 11); excluded from every decision's admit filter, the way
    /// the engine's liveness vector is.
    down: Vec<bool>,
    step: usize,
}

impl DiffSession<'_> {
    /// Replays `ops` against both agents in lockstep, continuing from
    /// the session's current clock and ledger.
    pub fn run(
        &mut self,
        a: &mut dyn DecisionAgent,
        b: &mut dyn DecisionAgent,
        ops: &[Op],
    ) -> Result<(), String> {
        for op in ops {
            self.now += op.gap.max(0.0);
            let now = self.now;
            let when = SimTime::from_secs(now);
            let step = self.step;
            self.step += 1;
            match op.kind {
                // Decision rounds, rotating the heuristic family.
                0..=5 => {
                    let heuristic = match op.kind {
                        0 | 3 => HeuristicKind::Hmct,
                        1 | 4 => HeuristicKind::Msf,
                        2 => HeuristicKind::MemHmct,
                        _ => HeuristicKind::Mct,
                    };
                    let task = TaskInstance::new(
                        TaskId(1_000_000 + self.next_id),
                        ProblemId(op.problem),
                        when,
                    );
                    self.next_id += 1;
                    let excl = op.excl;
                    let down = self.down.clone();
                    let admit = move |s: ServerId| s.0 != excl && !down[s.index()];
                    let world = self.harness;
                    let inputs = || DecisionInputs {
                        now: when,
                        task,
                        costs: &world.table,
                        reports: &world.reports,
                        server_mem: &world.server_mem,
                        admit: &admit,
                    };
                    // Both sides draw from identically seeded tie-break
                    // streams and identically fresh heuristic instances.
                    let mut rng_a = RngStream::derive(7, StreamKind::TieBreak);
                    let mut rng_b = RngStream::derive(7, StreamKind::TieBreak);
                    let pa = a.decide(inputs(), heuristic.build().as_mut(), &mut rng_a);
                    let pb = b.decide(inputs(), heuristic.build().as_mut(), &mut rng_b);
                    match (&pa, &pb) {
                        (None, None) => {}
                        (Some((sa, qa)), Some((sb, qb))) => {
                            if sa != sb {
                                return Err(format!(
                                    "step {step}: {heuristic:?} pick diverged: {sa} vs {sb}"
                                ));
                            }
                            if qa != qb {
                                return Err(format!(
                                    "step {step}: {heuristic:?} prediction diverged on {sa}: \
                                     {qa:?} vs {qb:?}"
                                ));
                            }
                        }
                        _ => {
                            return Err(format!(
                                "step {step}: {heuristic:?} one side failed the task \
                                 ({pa:?} vs {pb:?})"
                            ));
                        }
                    }
                }
                // Commits keep both sides in lockstep.
                6 | 7 => {
                    let table = &self.harness.table;
                    let task = TaskInstance::new(TaskId(self.next_id), ProblemId(op.problem), when);
                    self.next_id += 1;
                    let target = if table.costs(task.problem, ServerId(op.server)).is_some() {
                        Some(ServerId(op.server))
                    } else {
                        // Fall back to the problem's first solver.
                        (0..table.n_servers() as u32)
                            .map(ServerId)
                            .find(|&s| table.costs(task.problem, s).is_some())
                    };
                    let Some(target) = target else {
                        continue; // nobody solves it: nothing to commit
                    };
                    let work = table
                        .unloaded_duration(task.problem, target)
                        .expect("target is solvable");
                    a.commit(when, target, &task, work);
                    b.commit(when, target, &task, work);
                    self.committed.push((task.id, target, work));
                }
                // Retracts undo the most recent commit on both sides.
                8 => {
                    if let Some((id, srv, work)) = self.committed.pop() {
                        a.retract(when, srv, id, work);
                        b.retract(when, srv, id, work);
                    }
                }
                // A crash: every in-flight commit on the server is
                // retracted (oldest first — the order the engine walks
                // its per-server flight list), then the server goes
                // down. Crashing a down server only re-retracts nothing
                // and re-asserts the flag (idempotent on both sides).
                10 => {
                    let srv = ServerId(op.server % self.harness.table.n_servers() as u32);
                    let mut i = 0;
                    while i < self.committed.len() {
                        if self.committed[i].1 == srv {
                            let (id, srv, work) = self.committed.remove(i);
                            a.retract(when, srv, id, work);
                            b.retract(when, srv, id, work);
                        } else {
                            i += 1;
                        }
                    }
                    a.set_available(srv, false);
                    b.set_available(srv, false);
                    self.down[srv.index()] = true;
                }
                // A repair: the server rejoins the rankings at its
                // current believed load.
                11 => {
                    let srv = ServerId(op.server % self.harness.table.n_servers() as u32);
                    a.set_available(srv, true);
                    b.set_available(srv, true);
                    self.down[srv.index()] = false;
                }
                // Completions drain the oldest commit on both sides.
                _ => {
                    if !self.committed.is_empty() {
                        let (id, srv, work) = self.committed.remove(0);
                        let observed = now;
                        let predicted = now * 0.9 + 1.0;
                        a.complete(when, srv, id, work, observed, predicted);
                        b.complete(when, srv, id, work, observed, predicted);
                    }
                }
            }
        }
        Ok(())
    }

    /// End-of-run check: the two models must agree at rest (every
    /// committed task simulated to the same completion date).
    pub fn finish(
        self,
        a: &mut dyn DecisionAgent,
        b: &mut dyn DecisionAgent,
    ) -> Result<(), String> {
        let ca = a.completions();
        let cb = b.completions();
        if ca != cb {
            return Err(format!(
                "resting simulated completions diverged: {ca:?} vs {cb:?}"
            ));
        }
        Ok(())
    }
}

//! The shard federation: per-shard decision engines behind a
//! deterministic router.
//!
//! One `middleware::engine` used to own one [`Htm`], one [`StaticIndex`]
//! and one selector for the whole farm, so every per-decision scratch
//! buffer, every ranking tree and every repair hook scaled with the farm
//! size — the structural cap that kept the standing campaign at 1k
//! servers however cheap each individual decision got. The federation is
//! the same move hierarchical client-agent-server deployments make:
//! partition the farm ([`ShardMap`], deterministic and contiguous) and
//! give each shard its **own** engine ([`ShardEngine`]) holding an HTM,
//! a static index and a stage-1 selector over a *restricted* cost table
//! — every per-server structure is `O(n/S)`, not `O(n)`.
//!
//! [`AgentRouter`] is the thin layer on top. One decision runs:
//!
//! 1. **Stage 1, scatter**: every shard's selector proposes a shortlist
//!    from its local index (fanned over [`cas_sim::pool`] when it pays;
//!    results land in per-shard scratch slots, so worker count cannot
//!    change them).
//! 2. **Merge**: shortlists merge by stage-1 score (ties by global
//!    server id) and truncate to the widest shard's width — under an
//!    exhaustive selector the union is kept untruncated, preserving the
//!    paper's every-solver loop. The merged list is emitted in ascending
//!    global id, the order the heuristics' tie-breaks require.
//! 3. **Stage 2, gather**: the heuristic runs unchanged over a
//!    [`SchedView`] whose [`WhatIf`] backend routes each what-if query
//!    to the owning shard and dispatches batched `predict_all` calls
//!    per shard (slot-indexed reduction, bit-identical regardless of
//!    worker count).
//!
//! Commit/retract/complete hooks route to the owning shard **only**, so
//! model repair and index re-ranking cost stops scaling with farm size.
//!
//! # The `S = 1` invariant
//!
//! A federation of one shard is **bit-identical** to the single-agent
//! engine: the restricted cost table is the full table, local ids equal
//! global ids, the merge of one shortlist is that shortlist, and stage 2
//! batches over the same HTM. The differential proptests in this module
//! drive the router against an inline replica of the single-agent
//! decision loop over arbitrary commit/decide/retract/complete
//! interleavings, and the engine's end-to-end tests assert whole-campaign
//! record equality for every heuristic × selector backend. With more
//! shards, pruning selectors may legitimately diverge (each shard adapts
//! its own width); an exhaustive selector must not — and that too is
//! asserted end to end.

use cas_core::heuristics::{DecisionMemo, Heuristic, SchedView};
use cas_core::selector::{CandidateSelector, SelectorInput};
use cas_core::whatif::WhatIf;
use cas_core::{Htm, MemoStats, Prediction, SelectorKind, Stage2Mode, SyncPolicy};
use cas_platform::{
    CostTable, IndexScoring, LoadReport, PhaseCosts, ProblemId, RankingsBackend, ServerId,
    ShardMap, ShardTree, StaticIndex, TaskId, TaskInstance,
};
use cas_sim::{prof, RngStream, SimTime};
use std::collections::HashMap;

/// One per-shard stage-2 batch job: the shard, the shard-local candidate
/// ids, and the (disjoint) slice of the result vector its predictions
/// land in.
type BatchJob<'a> = (
    &'a mut ShardEngine,
    Vec<ServerId>,
    &'a mut [Option<Prediction>],
);

/// Per-shard candidate runs at most this long answer through per-candidate
/// [`Htm::predict`] instead of [`Htm::predict_all`]: the batch path pays an
/// O(shard-width) slot map per call, which a federation exists to avoid —
/// and the two paths are bit-identical (the batch is defined as, and
/// proptested against, per-candidate prediction).
const SMALL_RUN_MAX: usize = 16;

/// One shard's complete decision state: the HTM, the stage-1 index and
/// the stage-1 selector for a contiguous block of the farm, all built
/// over the block's *restricted* cost table and addressed by shard-local
/// server ids (`global = shard start + local`).
pub struct ShardEngine {
    /// First global server id of this shard's block.
    start: u32,
    htm: Htm,
    index: StaticIndex,
    selector: Box<dyn CandidateSelector>,
    /// Stage-1 scratch: the selector's shortlist, local ids, ascending.
    shortlist: Vec<ServerId>,
    /// Stage-1 scratch: the selector's scored shortlist, local ids.
    scored_local: Vec<(ServerId, f64)>,
    /// Stage-1 scratch: `(score bits, global id)` for the router's merge.
    scored: Vec<(u64, ServerId)>,
}

impl ShardEngine {
    fn new(
        costs: &CostTable,
        start: u32,
        len: usize,
        selector: SelectorKind,
        scoring: IndexScoring,
        rankings: RankingsBackend,
        sync: SyncPolicy,
    ) -> Self {
        let local_costs = costs.restrict(start, len);
        ShardEngine {
            start,
            index: StaticIndex::with_backend(&local_costs, scoring, rankings),
            htm: Htm::new(local_costs, sync),
            selector: selector.build(),
            shortlist: Vec::new(),
            scored_local: Vec::new(),
            scored: Vec::new(),
        }
    }

    /// Runs the shard's stage-1 selector. `admit` speaks global ids; the
    /// shortlist lands in `self.shortlist` (local ids) and, when
    /// `score_for_merge` is set, in `self.scored` as `(score bits,
    /// global id)` pairs for the router's merge.
    fn stage1(
        &mut self,
        problem: ProblemId,
        admit: &(dyn Fn(ServerId) -> bool + Sync),
        score_for_merge: bool,
    ) {
        let ShardEngine {
            start,
            htm,
            index,
            selector,
            shortlist,
            scored_local,
            scored,
        } = self;
        let start = *start;
        let local_admit = move |s: ServerId| admit(ServerId(s.0 + start));
        if !score_for_merge {
            selector.shortlist(
                SelectorInput {
                    problem,
                    costs: htm.costs(),
                    index,
                },
                &local_admit,
                shortlist,
            );
            return;
        }
        // Scores are non-negative finite, so the IEEE-754 bit pattern is
        // an order-preserving sort key (the same trick the index's
        // ranking trees use). Selectors that track scores hand them out
        // directly; the rest fall back to shortlist + index lookups.
        scored.clear();
        scored_local.clear();
        if selector.shortlist_scored(
            SelectorInput {
                problem,
                costs: htm.costs(),
                index,
            },
            &local_admit,
            scored_local,
        ) {
            for &(local, score) in scored_local.iter() {
                scored.push((score.to_bits(), ServerId(local.0 + start)));
            }
        } else {
            selector.shortlist(
                SelectorInput {
                    problem,
                    costs: htm.costs(),
                    index,
                },
                &local_admit,
                shortlist,
            );
            for &local in shortlist.iter() {
                let score = index
                    .score(problem, local)
                    .expect("shortlisted implies solvable");
                scored.push((score.to_bits(), ServerId(local.0 + start)));
            }
        }
    }

    /// This shard's HTM (spans only its own block of the farm).
    pub fn htm(&self) -> &Htm {
        &self.htm
    }

    /// The shard's **skyline** for `problem`: the best `(score bits,
    /// global id)` key its stage-1 index currently holds, or `None` when
    /// nothing in the shard solves the problem. Maintained for free by
    /// the same commit/retract/complete hooks that re-rank the index, so
    /// reading it costs one tree-head lookup and no scan. Ignores the
    /// decision's `admit` filter, which only ever *removes* candidates —
    /// the skyline is therefore a valid lower bound on any key the shard
    /// could contribute.
    fn skyline(&self, problem: ProblemId) -> Option<(u64, ServerId)> {
        self.index
            .best_key(problem)
            .map(|(bits, local)| (bits, ServerId(local.0 + self.start)))
    }

    /// Upper bound on the shortlist width this shard can emit for
    /// `problem`: its selector's hard cap, further capped by how many of
    /// its servers solve the problem at all.
    fn width_bound(&self, problem: ProblemId) -> usize {
        let solvable = self.index.solvable_count(problem);
        match self.selector.width_cap() {
            Some(cap) => solvable.min(cap),
            None => solvable,
        }
    }
}

/// Visit/skip counters of the skyline merge (cumulative over the
/// router's lifetime), per level of the shard tree.
///
/// On the **flat** walk (no tree, or a degenerate one-group tree) the
/// group counters stay zero and `shard_visits + shard_skips` equals
/// `decisions × n_shards` — every shard is either walked or provably
/// unable to contribute. On the **group** walk every *group* is either
/// visited or skipped (`group_visits + group_skips = decisions ×
/// n_groups`), and the shard counters cover only the shards *inside
/// visited groups* — a skipped group's members are pruned wholesale
/// without appearing in either shard counter, which is the entire point
/// of the hierarchy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SkylineStats {
    /// Federated decisions taken through the lazy merge.
    pub decisions: u64,
    /// Shards whose stage-1 selector actually ran.
    pub shard_visits: u64,
    /// Shards skipped — skyline beyond the cut line, or no solvable
    /// server for the problem — counted only inside visited groups when
    /// the group walk is active.
    pub shard_skips: u64,
    /// Groups whose member shards were walked (group walk only).
    pub group_visits: u64,
    /// Groups pruned wholesale — group skyline beyond the cut line, or
    /// no member shard holds a skyline for the problem.
    pub group_skips: u64,
}

impl SkylineStats {
    /// Fraction of *considered* shard walks avoided, in `[0, 1]` (shards
    /// inside skipped groups are never considered and do not appear).
    pub fn skip_rate(&self) -> f64 {
        let total = self.shard_visits + self.shard_skips;
        if total == 0 {
            0.0
        } else {
            self.shard_skips as f64 / total as f64
        }
    }

    /// Fraction of group walks avoided, in `[0, 1]` (zero off the group
    /// walk).
    pub fn group_skip_rate(&self) -> f64 {
        let total = self.group_visits + self.group_skips;
        if total == 0 {
            0.0
        } else {
            self.group_skips as f64 / total as f64
        }
    }
}

/// One group's cached skyline summary for one problem: the min over its
/// member shards' skylines (the best key anything in the group could
/// contribute) and the max over their width bounds (the widest shortlist
/// anything in the group could emit). `None` skyline means no member
/// holds one — the group is unconditionally skippable for the problem.
#[derive(Debug, Clone, Copy)]
struct GroupKey {
    skyline: Option<(u64, u32)>,
    bound: usize,
}

/// One model-mutation hook, recorded for rebalance replay. A shard
/// engine's HTM and index state is a deterministic function of the
/// chronological op sequence that touched its servers — but not a
/// *transplantable* one: the index's remaining-work ledger is a float
/// fold (splitting it at a new boundary would reassociate the sums) and
/// the HTM ages traces in place. A block with a new boundary can
/// therefore only be populated by replaying the ops, never by slicing
/// state out of the old engines. Completions deliberately drop the
/// observed/predicted flows: rebalance restarts stage-1 selector
/// adaptation on every shard, so replay never feeds a selector.
#[derive(Debug, Clone, Copy)]
enum ModelOp {
    Commit {
        now: SimTime,
        server: ServerId,
        task: TaskInstance,
        work: f64,
    },
    Retract {
        now: SimTime,
        server: ServerId,
        task: TaskId,
        work: f64,
    },
    Complete {
        now: SimTime,
        server: ServerId,
        task: TaskId,
        work: f64,
    },
    Available {
        server: ServerId,
        up: bool,
    },
}

/// Everything one scheduling decision needs from the world, read-only.
pub struct DecisionInputs<'a> {
    /// Decision time.
    pub now: SimTime,
    /// The task to place.
    pub task: TaskInstance,
    /// The farm-wide cost table (stage 2 speaks global ids).
    pub costs: &'a CostTable,
    /// Per-server load reports, global ids.
    pub reports: &'a [LoadReport],
    /// Per-server admission limits (RAM + swap), MB, global ids.
    pub server_mem: &'a [f64],
    /// Which servers the agent may consider (excludes retry-refused and
    /// known-collapsed servers).
    pub admit: &'a (dyn Fn(ServerId) -> bool + Sync),
}

/// The federated agent: per-shard engines behind the deterministic
/// scatter–merge–gather router described in the module docs.
pub struct AgentRouter {
    map: ShardMap,
    shards: Vec<ShardEngine>,
    /// `true` runs the full scatter/merge router even with one shard
    /// (`Sharding::Federated`); `false` is the single-agent fast path
    /// (requires exactly one shard).
    federated: bool,
    /// Exhaustive selectors merge by union, without truncation.
    exhaustive: bool,
    /// Lazy skyline merge on (default): shards are visited in skyline
    /// order and skipped once they provably cannot contribute. Off
    /// replays the PR-4 eager full scatter — the executable spec the
    /// differential harness diffs the lazy merge against.
    skyline: bool,
    /// The two-level shard tree: groups of shards with cached group
    /// skylines, so the lazy walk prunes whole groups before touching a
    /// member shard. Rebuilt whenever the shard count changes.
    tree: ShardTree,
    /// Group walk on (default): with more than one group the lazy merge
    /// walks groups first. Off forces the flat per-shard walk — the
    /// executable spec the group walk is differentially proven against.
    tree_enabled: bool,
    /// Requested shards-per-group fan-out (the tree clamps it).
    group_size: usize,
    /// Per-`(group, problem)` cached [`GroupKey`]s, indexed by
    /// `group × n_problems + problem`; `None` = dirty (a hook touched a
    /// member shard since the last read). Repaired at the next group walk.
    group_cache: Vec<Option<GroupKey>>,
    /// Problems covered by the cost table (the cache stride).
    n_problems: usize,
    /// Parallel stage-1 arm: `None` engages it automatically when the
    /// pool has more than one worker, `Some(b)` forces it on or off
    /// (differential runs must exercise the arm on any host).
    parallel_override: Option<bool>,
    /// Cumulative visit/skip counters of the skyline merge.
    stats: SkylineStats,
    /// Forces every decision's stage 2 through the batch `predict_all`
    /// arm — the decision shape before the direct zero-allocation path
    /// existed; the hot-path bench keeps it as its same-run baseline.
    batch_predict: bool,
    /// Run-wide decision memo lent to each decision's `SchedView`
    /// (dense by *global* server index).
    memo: DecisionMemo,
    /// Reusable prediction storage for commit-path queries
    /// ([`AgentRouter::predict_completion`]): the engine only needs the
    /// completion date, so the perturbation buffer is rewritten in place
    /// instead of allocated per commit.
    pred_scratch: Prediction,
    /// Merge scratch: `(score bits, global id)` across shards. The lazy
    /// merge keeps it sorted ascending so the cut line is an indexed
    /// read.
    merged: Vec<(u64, ServerId)>,
    /// Lazy-merge scratch: `(skyline bits, skyline global id, shard)` —
    /// the visit order.
    order: Vec<(u64, u32, u32)>,
    /// Merge scratch: the final candidate list, ascending global id.
    candidates: Vec<ServerId>,
    /// How the engines were built — needed to rebuild blocks when the
    /// partition changes under churn.
    selector_kind: SelectorKind,
    scoring: IndexScoring,
    rankings: RankingsBackend,
    sync: SyncPolicy,
    /// Stage-2 drain engine on every shard HTM (fast by default; the full
    /// pre-optimisation engine behind `--stage2 full`). Remembered so any
    /// block a rebalance rebuilds keeps the chosen engine.
    stage2: Stage2Mode,
    /// Completion-only drain depth — set when the run's heuristic never
    /// reads perturbations, letting fast-mode drains truncate at the
    /// probe's completion. Remembered across rebuilds like `stage2`.
    completion_only: bool,
    /// Forced on/off override for the stage-2 parallel scatter inside
    /// each shard HTM (tests drive both arms on any host).
    parallel_stage2: Option<bool>,
    /// Model-op history for rebalance replay. Recorded only when
    /// [`AgentRouter::with_history`] turned it on — the engine enables
    /// it exactly when churn can trigger a rebalance.
    record_history: bool,
    history: Vec<ModelOp>,
}

impl AgentRouter {
    /// Builds the agent for a farm described by `costs`. `shards = None`
    /// is the single-agent path; `Some(s)` federates into `s` shards
    /// (clamped so no shard is empty).
    pub fn new(
        costs: &CostTable,
        shards: Option<usize>,
        selector: SelectorKind,
        scoring: IndexScoring,
        sync: SyncPolicy,
    ) -> Self {
        let n = costs.n_servers();
        let (federated, count) = match shards {
            None => (false, 1),
            Some(s) => (true, s),
        };
        let map = ShardMap::new(n, count);
        let rankings = RankingsBackend::default();
        let shards: Vec<ShardEngine> = (0..map.n_shards())
            .map(|k| {
                ShardEngine::new(
                    costs,
                    map.start(k),
                    map.len(k),
                    selector,
                    scoring,
                    rankings,
                    sync,
                )
            })
            .collect();
        let tree = ShardTree::new(map.n_shards(), ShardTree::DEFAULT_GROUP_SHARDS);
        let n_problems = costs.n_problems();
        let group_cache = vec![None; tree.n_groups() * n_problems];
        AgentRouter {
            map,
            shards,
            federated,
            exhaustive: selector == SelectorKind::Exhaustive,
            skyline: true,
            tree,
            tree_enabled: true,
            group_size: ShardTree::DEFAULT_GROUP_SHARDS,
            group_cache,
            n_problems,
            parallel_override: None,
            stats: SkylineStats::default(),
            batch_predict: false,
            memo: DecisionMemo::new(),
            pred_scratch: Prediction::empty(),
            merged: Vec::new(),
            order: Vec::new(),
            candidates: Vec::new(),
            selector_kind: selector,
            scoring,
            rankings,
            sync,
            stage2: Stage2Mode::default(),
            completion_only: false,
            parallel_stage2: None,
            record_history: false,
            history: Vec::new(),
        }
    }

    /// Applies the router's remembered stage-2 settings to one engine's
    /// HTM — every construction site (initial build, rebalance rebuild)
    /// funnels through this so no shard can silently run the wrong
    /// drain engine.
    fn apply_stage2(&self, e: &mut ShardEngine) {
        e.htm.set_stage2_mode(self.stage2);
        e.htm.set_completion_only(self.completion_only);
        e.htm.set_parallel_stage2(self.parallel_stage2);
    }

    /// Turns on model-op history recording (off by default): every
    /// commit/retract/complete/availability hook is logged so
    /// [`AgentRouter::rebalance`] can repopulate rebuilt blocks by
    /// replay. The engine enables this exactly when a finite MTBF can
    /// drift the live-server count past the federation's size band.
    pub fn with_history(mut self, record: bool) -> Self {
        self.record_history = record;
        self
    }

    /// Selects the stage-1 ranking storage backend on every shard index
    /// (flat ladder by default; the BTree spec behind the config flag).
    /// Decisions are proven bit-identical either way, and any block a
    /// later rebalance rebuilds keeps the chosen backend.
    pub fn with_rankings(mut self, rankings: RankingsBackend) -> Self {
        self.rankings = rankings;
        for shard in &mut self.shards {
            shard.index.set_backend(rankings);
        }
        self
    }

    /// Forces every stage-2 evaluation through the batch `predict_all`
    /// arm instead of the direct per-candidate path (off by default).
    /// Decisions are bit-identical either way — this is the executable
    /// spec arm the hot-path bench baselines against.
    pub fn with_batch_predict(mut self, batch_only: bool) -> Self {
        self.batch_predict = batch_only;
        self
    }

    /// Toggles the lazy skyline merge (on by default). Off replays the
    /// eager full scatter; decisions are proven bit-identical either way,
    /// so this exists for the differential runs and as an escape hatch.
    pub fn with_skyline(mut self, skyline: bool) -> Self {
        self.skyline = skyline;
        self
    }

    /// Toggles the two-level group walk (on by default, and inert until
    /// the tree actually has more than one group). Off forces the flat
    /// per-shard walk — the executable spec the group walk is proven
    /// bit-identical against.
    pub fn with_tree(mut self, enabled: bool) -> Self {
        self.tree_enabled = enabled;
        self
    }

    /// Overrides the shards-per-group fan-out (default
    /// [`ShardTree::DEFAULT_GROUP_SHARDS`]) and rebuilds the tree. The
    /// tree clamps degenerate values; `0` is treated as `1`.
    pub fn with_group_size(mut self, group_size: usize) -> Self {
        self.group_size = group_size.max(1);
        self.rebuild_tree();
        self
    }

    /// Forces the parallel stage-1 arm on or off. By default the arm
    /// engages automatically when the worker pool has more than one
    /// worker; the differential runs force it **on** so the arm's
    /// determinism is proven even on single-core hosts (the pool scope
    /// then degenerates to the caller draining every job).
    pub fn with_parallel_stage1(mut self, forced: bool) -> Self {
        self.parallel_override = Some(forced);
        self
    }

    /// Selects the stage-2 drain engine on every shard HTM
    /// ([`Stage2Mode::Fast`] by default; `Full` is the pre-optimisation
    /// executable spec). Decisions are proven bit-identical either way,
    /// and any block a later rebalance rebuilds keeps the chosen engine.
    pub fn with_stage2(mut self, mode: Stage2Mode) -> Self {
        self.stage2 = mode;
        for shard in &mut self.shards {
            shard.htm.set_stage2_mode(mode);
        }
        self
    }

    /// Declares that this run's heuristic never reads perturbations, so
    /// fast-mode drains may truncate at the probe's completion (inert
    /// under [`Stage2Mode::Full`]). Sourced from
    /// [`Heuristic::needs_perturbations`] by the engine.
    pub fn with_completion_only(mut self, completion_only: bool) -> Self {
        self.completion_only = completion_only;
        for shard in &mut self.shards {
            shard.htm.set_completion_only(completion_only);
        }
        self
    }

    /// Forces the stage-2 parallel scatter inside every shard HTM on or
    /// off (`None` restores the automatic worker-count gate). Tests use
    /// this to prove the scatter's determinism on any host.
    pub fn set_parallel_stage2(&mut self, force: Option<bool>) {
        self.parallel_stage2 = force;
        for shard in &mut self.shards {
            shard.htm.set_parallel_stage2(force);
        }
    }

    /// Aggregated stage-2 drain counters across every shard HTM: drains
    /// run, memo hits, truncated drains, prefix resumes.
    pub fn stage2_stats(&self) -> MemoStats {
        self.shards
            .iter()
            .map(|s| s.htm.memo_stats())
            .fold(MemoStats::default(), |a, b| a.merge(b))
    }

    /// The two-level shard tree (degenerate — one group — when the farm
    /// is small enough that the flat walk is used).
    pub fn tree(&self) -> &ShardTree {
        &self.tree
    }

    /// Cumulative skyline visit/skip counters (zero when the lazy merge
    /// never ran: single-agent path, exhaustive selector, or skyline
    /// off).
    pub fn skyline_stats(&self) -> SkylineStats {
        self.stats
    }

    /// Rebuilds the tree over the current shard count and invalidates
    /// every cached group key.
    fn rebuild_tree(&mut self) {
        self.tree = ShardTree::new(self.shards.len(), self.group_size);
        self.group_cache.clear();
        self.group_cache
            .resize(self.tree.n_groups() * self.n_problems, None);
    }

    /// Invalidates the cached group keys (every problem) of the group
    /// owning `shard`. Called from every hook that can move a member
    /// shard's skyline or width bound: commit/retract/complete (index
    /// re-ranks, selector stretch feedback), availability flips, and the
    /// post-pick selector observation (adaptive widths react to both
    /// observation hooks, never to running the shortlist itself).
    fn dirty_shard_group(&mut self, shard: usize) {
        let g = self.tree.group_of(shard);
        let base = g * self.n_problems;
        self.group_cache[base..base + self.n_problems].fill(None);
    }

    /// The cached group key for `(g, problem)`, recomputed from the
    /// member shards when dirty: the min over member skylines and the
    /// max over member width bounds. A shard with no solvable server
    /// holds no skyline *and* a zero width bound, so it influences
    /// neither fold.
    fn group_key(&mut self, g: usize, problem: ProblemId) -> GroupKey {
        let slot = g * self.n_problems + problem.0 as usize;
        if let Some(key) = self.group_cache[slot] {
            return key;
        }
        let mut skyline: Option<(u64, u32)> = None;
        let mut bound = 0usize;
        for k in self.tree.members(g) {
            let shard = &self.shards[k];
            if let Some((bits, head)) = shard.skyline(problem) {
                let key = (bits, head.0);
                skyline = Some(match skyline {
                    Some(cur) if cur <= key => cur,
                    _ => key,
                });
                bound = bound.max(shard.width_bound(problem));
            }
        }
        let key = GroupKey { skyline, bound };
        self.group_cache[slot] = Some(key);
        key
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the scatter/merge router path is active (as opposed to
    /// the single-agent fast path).
    pub fn is_federated(&self) -> bool {
        self.federated
    }

    /// The partition.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard engine owning `server`.
    pub fn shard_for(&self, server: ServerId) -> &ShardEngine {
        &self.shards[self.map.owner(server)]
    }

    /// Shard 0's HTM. With a single shard (the default configuration)
    /// this is the whole farm's model, preserving the pre-federation
    /// `GridWorld::htm()` surface; with more shards it spans only the
    /// first block — use [`AgentRouter::shard_for`] for the rest.
    pub fn htm(&self) -> &Htm {
        &self.shards[0].htm
    }

    /// Mutable variant of [`AgentRouter::htm`] (Gantt recording).
    pub fn htm_mut(&mut self) -> &mut Htm {
        &mut self.shards[0].htm
    }

    /// Runs one full two-stage decision and reports the pick to the
    /// owning shard's selector. Deterministic: identical inputs produce
    /// identical picks on any host, any worker count.
    pub fn decide(
        &mut self,
        inp: DecisionInputs<'_>,
        heuristic: &mut dyn Heuristic,
        tie_rng: &mut RngStream,
    ) -> Option<ServerId> {
        if !self.federated {
            // Single-agent fast path: shard 0 is the farm; no merge, no
            // translation — byte for byte the pre-federation decision.
            // The shortlist is lent to the view as a slice: the steady
            // state copies nothing per decision.
            let shard = &mut self.shards[0];
            {
                let _walk = prof::span(prof::Phase::Stage1Walk);
                shard.stage1(inp.task.problem, inp.admit, false);
            }
            let pick = {
                let _predict = prof::span(prof::Phase::Stage2Predict);
                let mut view = SchedView::new(
                    inp.now,
                    inp.task,
                    shard.shortlist.as_slice(),
                    inp.costs,
                    inp.reports,
                    &mut shard.htm,
                    tie_rng,
                )
                .with_server_mem(inp.server_mem)
                .with_memo(&mut self.memo)
                .with_batch_predict(self.batch_predict);
                heuristic.select(&mut view)
            };
            if let Some(s) = pick {
                shard.selector.observe_selection(s);
            }
            return pick;
        }
        let walk = prof::span(prof::Phase::Stage1Walk);

        // Stage 1. Exhaustive selectors always run the eager full
        // scatter (the every-solver loop must stay exact and keeps the
        // whole union anyway); pruning selectors take the lazy skyline
        // merge unless it was explicitly switched off for a differential
        // run.
        let problem = inp.task.problem;
        let admit = inp.admit;
        self.merged.clear();
        self.candidates.clear();
        if self.exhaustive || !self.skyline {
            // Eager scatter: every shard shortlists from its own index.
            // Each shard writes only its own scratch, so the pool
            // fan-out cannot reorder anything.
            let pool = cas_sim::pool::global();
            if self.shards.len() > 1 && pool.workers() > 1 {
                pool.scope(|scope| {
                    for shard in self.shards.iter_mut() {
                        scope.spawn(move || shard.stage1(problem, admit, true));
                    }
                });
            } else {
                for shard in self.shards.iter_mut() {
                    shard.stage1(problem, admit, true);
                }
            }

            // Merge by stage-1 score (ties by global id), truncated to
            // the widest shard's width: with balanced shards this
            // behaves like one shard-wide selector of that width.
            // Exhaustive selectors keep the whole union — the
            // every-solver loop must stay exact.
            if self.exhaustive {
                // Per-shard shortlists are ascending-local, shards
                // ascending blocks: concatenation is already ascending
                // global id.
                for shard in &self.shards {
                    self.candidates.extend(shard.scored.iter().map(|&(_, s)| s));
                }
            } else {
                let widest = self
                    .shards
                    .iter()
                    .map(|s| s.scored.len())
                    .max()
                    .unwrap_or(0);
                for shard in &self.shards {
                    self.merged.extend_from_slice(&shard.scored);
                }
                if self.merged.len() > widest && widest > 0 {
                    // Keep the `widest` best by (score, id): a partial
                    // select beats sorting the whole S×k merge, and the
                    // kept *set* is unique (keys are distinct pairs), so
                    // this is bit-identical to sort-then-truncate.
                    self.merged.select_nth_unstable(widest - 1);
                    self.merged.truncate(widest);
                }
                self.candidates.extend(self.merged.iter().map(|&(_, s)| s));
                self.candidates.sort_unstable();
            }
        } else {
            // Pruning selector with the skyline merge on. With a real
            // tree (more than one group) the walk goes through the
            // group level — parallel when the pool pays (or a
            // differential run forces the arm), serial otherwise; a
            // degenerate tree falls back to the flat per-shard walk.
            let grouped = self.tree_enabled && !self.tree.is_empty();
            let parallel = self
                .parallel_override
                .unwrap_or_else(|| cas_sim::pool::global().workers() > 1);
            if grouped && parallel {
                self.parallel_stage1(problem, admit);
            } else if grouped {
                self.tree_stage1(problem, admit);
            } else {
                self.lazy_stage1(problem, admit);
            }
            self.candidates.extend(self.merged.iter().map(|&(_, s)| s));
            self.candidates.sort_unstable();
        }

        drop(walk);

        // Stage 2, gather: the heuristic runs over the federation through
        // the routed what-if backend; the merged candidate list is lent
        // as a slice, not copied.
        let pick = {
            let _predict = prof::span(prof::Phase::Stage2Predict);
            let mut backend = FederatedWhatIf {
                map: &self.map,
                shards: &mut self.shards,
            };
            let mut view = SchedView::new(
                inp.now,
                inp.task,
                self.candidates.as_slice(),
                inp.costs,
                inp.reports,
                &mut backend,
                tie_rng,
            )
            .with_server_mem(inp.server_mem)
            .with_memo(&mut self.memo)
            .with_batch_predict(self.batch_predict);
            heuristic.select(&mut view)
        };
        if let Some(s) = pick {
            let owner = self.map.owner(s);
            let local = self.map.to_local(owner, s);
            self.shards[owner].selector.observe_selection(local);
            // An adaptive selector may have widened or narrowed: the
            // owner's cached group bound is no longer trustworthy.
            self.dirty_shard_group(owner);
        }
        pick
    }

    /// The lazy skyline merge. Semantically it computes exactly what the
    /// eager scatter-then-truncate computes — the `W`-best `(score bits,
    /// global id)` entries of the union of per-shard shortlists, where
    /// `W` is the widest shard's width — but it visits shards in
    /// ascending skyline order and *skips a shard's selector entirely*
    /// once two facts make its contribution impossible:
    ///
    /// 1. its width bound cannot exceed the widest width already seen
    ///    (so skipping cannot shrink `W`), and
    /// 2. at least `B` already-collected entries beat the shard's
    ///    skyline — its best conceivable key — where `B` is the largest
    ///    width bound of *any* shard, hence `B ≥ W` whatever the
    ///    unvisited shards would have emitted. Every entry the shard
    ///    could contribute then ranks strictly outside the final
    ///    `W`-best cut.
    ///
    /// Both facts are conservative (the skyline ignores `admit`, which
    /// only removes candidates; bounds only overestimate widths), so the
    /// lazy merge is a *pure pruning of the walk, never of the result* —
    /// the differential harness proves the picks bit-identical to the
    /// eager router's. Shards with no solvable server for the problem
    /// skip unconditionally: their shortlist is empty under any filter.
    ///
    /// Leaves `self.merged` holding the final cut, sorted ascending by
    /// `(score bits, global id)`.
    fn lazy_stage1(&mut self, problem: ProblemId, admit: &(dyn Fn(ServerId) -> bool + Sync)) {
        self.stats.decisions += 1;
        self.order.clear();
        let mut bound_cap = 0usize; // B: the largest width any shard could emit
        for (k, shard) in self.shards.iter().enumerate() {
            match shard.skyline(problem) {
                Some((bits, head)) => {
                    self.order.push((bits, head.0, k as u32));
                    bound_cap = bound_cap.max(shard.width_bound(problem));
                }
                None => self.stats.shard_skips += 1,
            }
        }
        // Visit order: ascending skyline key. Unique per shard (the
        // head's global id is part of the key), so the order — and with
        // it every skip decision — is deterministic on any host.
        self.order.sort_unstable();
        let mut widest = 0usize;
        for i in 0..self.order.len() {
            let (bits, head, k) = self.order[i];
            let k = k as usize;
            let bound = self.shards[k].width_bound(problem);
            if bound <= widest
                && self.merged.len() >= bound_cap
                && self.merged[bound_cap - 1] < (bits, ServerId(head))
            {
                self.stats.shard_skips += 1;
                continue;
            }
            self.stats.shard_visits += 1;
            let shard = &mut self.shards[k];
            shard.stage1(problem, admit, true);
            widest = widest.max(shard.scored.len());
            self.merged.extend_from_slice(&shard.scored);
            // Keep the collected entries sorted so the cut line above is
            // an indexed read. The whole vector is at most S × k entries
            // and mostly sorted already; this is noise next to the walks
            // being skipped.
            self.merged.sort_unstable();
        }
        if self.merged.len() > widest {
            self.merged.truncate(widest);
        }
    }

    /// The two-level skyline walk: [`lazy_stage1`](Self::lazy_stage1)
    /// lifted to the shard tree. Groups are visited in ascending *group
    /// skyline* order (the min over member skylines, cached and repaired
    /// lazily), and a whole group is skipped — without reading a single
    /// member shard — when the flat walk's skip condition holds for the
    /// group key:
    ///
    /// 1. the group's width bound (max over members) cannot exceed the
    ///    widest width already seen, and
    /// 2. at least `B` collected entries beat the group skyline, `B`
    ///    being the largest group bound overall.
    ///
    /// Because the group skyline lower-bounds every member skyline and
    /// the group bound upper-bounds every member bound, the group
    /// condition implies the flat condition for **each member** — so the
    /// group walk prunes a superset of nothing the flat walk would keep,
    /// and the merged cut is bit-identical (the differential proptests
    /// prove it against both the flat walk and the eager scatter).
    /// Inside a visited group, members run the flat per-shard condition
    /// unchanged.
    fn tree_stage1(&mut self, problem: ProblemId, admit: &(dyn Fn(ServerId) -> bool + Sync)) {
        self.stats.decisions += 1;
        self.order.clear();
        let mut bound_cap = 0usize; // B: the largest width any group could emit
        for g in 0..self.tree.n_groups() {
            let key = self.group_key(g, problem);
            match key.skyline {
                Some((bits, head)) => {
                    self.order.push((bits, head, g as u32));
                    bound_cap = bound_cap.max(key.bound);
                }
                None => self.stats.group_skips += 1,
            }
        }
        // Ascending group-skyline order; the head's global id makes the
        // key unique per group, so the walk is deterministic.
        self.order.sort_unstable();
        let order = std::mem::take(&mut self.order);
        let mut widest = 0usize;
        for &(bits, head, g) in &order {
            let g = g as usize;
            let gbound = self.group_cache[g * self.n_problems + problem.0 as usize]
                .expect("repaired above")
                .bound;
            if gbound <= widest
                && self.merged.len() >= bound_cap
                && self.merged[bound_cap - 1] < (bits, ServerId(head))
            {
                self.stats.group_skips += 1;
                continue;
            }
            self.stats.group_visits += 1;
            for k in self.tree.members(g) {
                let Some((sbits, shead)) = self.shards[k].skyline(problem) else {
                    self.stats.shard_skips += 1;
                    continue;
                };
                let bound = self.shards[k].width_bound(problem);
                if bound <= widest
                    && self.merged.len() >= bound_cap
                    && self.merged[bound_cap - 1] < (sbits, shead)
                {
                    self.stats.shard_skips += 1;
                    continue;
                }
                self.stats.shard_visits += 1;
                let shard = &mut self.shards[k];
                shard.stage1(problem, admit, true);
                widest = widest.max(shard.scored.len());
                self.merged.extend_from_slice(&shard.scored);
                self.merged.sort_unstable();
            }
        }
        self.order = order;
        if self.merged.len() > widest {
            self.merged.truncate(widest);
        }
    }

    /// The parallel stage-1 arm: group-level pruning from the cache
    /// (groups with no skyline skip exactly as in the serial walks),
    /// then an **eager** scatter of every surviving group over
    /// [`cas_sim::pool`] — cut-line pruning needs the merged-so-far
    /// state and is pointless once the walks run concurrently. Each job
    /// owns a disjoint `&mut` block of member shards plus its own count
    /// slot, so worker count cannot reorder anything; the reduction
    /// concatenates per-shard scratch in shard order and keeps the
    /// `W`-best by partial select — the kept *set* equals
    /// sort-then-truncate (keys are unique pairs), which is exactly the
    /// eager merge, which the serial walks are proven identical to.
    /// Shards with no skyline clear their scratch and skip: their
    /// shortlist is empty under any admit filter.
    fn parallel_stage1(&mut self, problem: ProblemId, admit: &(dyn Fn(ServerId) -> bool + Sync)) {
        self.stats.decisions += 1;
        // Group-level prune, serial: one cached key per group.
        let mut visited: Vec<usize> = Vec::with_capacity(self.tree.n_groups());
        for g in 0..self.tree.n_groups() {
            if self.group_key(g, problem).skyline.is_some() {
                visited.push(g);
            } else {
                self.stats.group_skips += 1;
            }
        }
        self.stats.group_visits += visited.len() as u64;
        // Scatter: one job per visited group, member blocks split into
        // disjoint `&mut` slices (groups are contiguous, ascending).
        let mut counts: Vec<(u64, u64)> = vec![(0, 0); visited.len()];
        {
            let mut jobs: Vec<(&mut [ShardEngine], &mut (u64, u64))> =
                Vec::with_capacity(visited.len());
            let mut shards_rest: &mut [ShardEngine] = &mut self.shards;
            let mut shards_off = 0usize;
            let mut counts_rest: &mut [(u64, u64)] = &mut counts;
            for &g in &visited {
                let members = self.tree.members(g);
                let (_, tail) = shards_rest.split_at_mut(members.start - shards_off);
                let (block, tail) = tail.split_at_mut(members.len());
                shards_rest = tail;
                shards_off = members.end;
                let (slot, tail) = counts_rest.split_first_mut().expect("one slot per job");
                counts_rest = tail;
                jobs.push((block, slot));
            }
            let pool = cas_sim::pool::global();
            pool.scope(|scope| {
                for (block, slot) in jobs {
                    scope.spawn(move || {
                        for shard in block.iter_mut() {
                            if shard.skyline(problem).is_some() {
                                shard.stage1(problem, admit, true);
                                slot.0 += 1;
                            } else {
                                shard.scored.clear();
                                slot.1 += 1;
                            }
                        }
                    });
                }
            });
        }
        // Reduce in slot (= group, = shard) order.
        for &(v, s) in &counts {
            self.stats.shard_visits += v;
            self.stats.shard_skips += s;
        }
        let mut widest = 0usize;
        for &g in &visited {
            for k in self.tree.members(g) {
                let scored = &self.shards[k].scored;
                widest = widest.max(scored.len());
                self.merged.extend_from_slice(scored);
            }
        }
        if self.merged.len() > widest && widest > 0 {
            self.merged.select_nth_unstable(widest - 1);
            self.merged.truncate(widest);
        }
    }

    /// A what-if query outside a decision (the engine records the
    /// commit-time prediction of the winning server).
    pub fn predict(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction> {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner].htm.predict(now, local, task)
    }

    /// The commit-path variant of [`AgentRouter::predict`]: the engine
    /// records only the winner's completion date, so the query writes
    /// the router's reusable scratch prediction in place and hands back
    /// the single field — no allocation per commit.
    pub fn predict_completion(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<SimTime> {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner]
            .htm
            .predict_into(now, local, task, &mut self.pred_scratch)
            .then_some(self.pred_scratch.completion)
    }

    /// Routes a commit to the owning shard: HTM trace mutation plus
    /// index re-rank, both `O(shard)` — farm size does not appear.
    pub fn on_commit(&mut self, now: SimTime, server: ServerId, task: &TaskInstance, work: f64) {
        if self.record_history {
            self.history.push(ModelOp::Commit {
                now,
                server,
                task: *task,
                work,
            });
        }
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        let shard = &mut self.shards[owner];
        shard.htm.commit(now, local, task);
        shard.index.on_commit(local, work);
        self.dirty_shard_group(owner);
    }

    /// Routes a retract (placement undone before running) to the owning
    /// shard.
    pub fn on_retract(&mut self, now: SimTime, server: ServerId, task: TaskId, work: f64) {
        if self.record_history {
            self.history.push(ModelOp::Retract {
                now,
                server,
                task,
                work,
            });
        }
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        let shard = &mut self.shards[owner];
        shard.htm.retract(now, task);
        shard.index.on_retract(local, work);
        self.dirty_shard_group(owner);
    }

    /// Routes a completion to the owning shard: index decrement, HTM
    /// synchronisation (per the sync policy) and the selector's stretch
    /// feedback (`observed` vs `predicted` **flow** — durations since
    /// arrival, seconds, so the relative tolerance is age-independent).
    pub fn on_complete(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: TaskId,
        work: f64,
        observed: f64,
        predicted: f64,
    ) {
        if self.record_history {
            self.history.push(ModelOp::Complete {
                now,
                server,
                task,
                work,
            });
        }
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        let shard = &mut self.shards[owner];
        shard.index.on_complete(local, work);
        shard.htm.observe_completion(now, task);
        shard.selector.observe_outcome(observed, predicted);
        self.dirty_shard_group(owner);
    }

    /// Marks `server` up or down in its owning shard's stage-1 index:
    /// down removes it from every ranking (and the skylines — a dead
    /// server can never head a shard's merge order) while its
    /// remaining-work ledger keeps draining, so completions of work
    /// already placed there stay consistent; up re-inserts it at its
    /// current believed load. Returns whether the flag changed
    /// (idempotent otherwise). The decision path additionally excludes
    /// dead servers through `admit`, which is what keeps the exhaustive
    /// selector — which scans the cost table, not the index — exact.
    pub fn set_available(&mut self, server: ServerId, up: bool) -> bool {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        let changed = self.shards[owner].index.set_available(local, up);
        if changed {
            self.dirty_shard_group(owner);
            if self.record_history {
                self.history.push(ModelOp::Available { server, up });
            }
        }
        changed
    }

    fn check_rebalance(&self, costs: &CostTable, new_map: &ShardMap) {
        assert!(self.federated, "rebalance requires the federated router");
        assert!(
            self.record_history,
            "rebalance requires history recording (AgentRouter::with_history)"
        );
        assert_eq!(
            new_map.n_servers(),
            self.map.n_servers(),
            "rebalance cannot change the farm size"
        );
        assert_eq!(
            costs.n_servers(),
            self.map.n_servers(),
            "cost table must span the farm"
        );
    }

    /// A fresh engine for the block `[start, start + len)`, repopulated
    /// by replaying the recorded history filtered to its servers (see
    /// [`ModelOp`] for why replay, not state transplant). Selector
    /// feedback is deliberately not replayed — rebalance restarts
    /// stage-1 adaptation everywhere.
    fn rebuilt_engine(&self, costs: &CostTable, start: u32, len: usize) -> ShardEngine {
        let mut e = ShardEngine::new(
            costs,
            start,
            len,
            self.selector_kind,
            self.scoring,
            self.rankings,
            self.sync,
        );
        self.apply_stage2(&mut e);
        let end = start + len as u32;
        let owned = |s: ServerId| s.0 >= start && s.0 < end;
        for op in &self.history {
            match *op {
                ModelOp::Commit {
                    now,
                    server,
                    task,
                    work,
                } if owned(server) => {
                    let local = ServerId(server.0 - start);
                    e.htm.commit(now, local, &task);
                    e.index.on_commit(local, work);
                }
                ModelOp::Retract {
                    now,
                    server,
                    task,
                    work,
                } if owned(server) => {
                    let local = ServerId(server.0 - start);
                    e.htm.retract(now, task);
                    e.index.on_retract(local, work);
                }
                ModelOp::Complete {
                    now,
                    server,
                    task,
                    work,
                } if owned(server) => {
                    let local = ServerId(server.0 - start);
                    e.index.on_complete(local, work);
                    e.htm.observe_completion(now, task);
                }
                ModelOp::Available { server, up } if owned(server) => {
                    e.index.set_available(ServerId(server.0 - start), up);
                }
                _ => {}
            }
        }
        e
    }

    /// Re-partitions the federation to `new_map`, rebuilding **only**
    /// the blocks whose boundaries changed. A new shard whose
    /// `(start, len)` block survives from the old map keeps its engine
    /// — HTM and index are deterministic functions of the op history, so
    /// reuse and replay agree; every other block is rebuilt by replay.
    /// Stage-1 selector adaptation restarts fresh on **every** shard and
    /// the decision memo resets, making an incremental rebalance
    /// observably identical to [`AgentRouter::rebalance_full`] — the
    /// executable spec that rebuilds everything — which the rebalance
    /// proptests prove bit for bit. Under the exhaustive selector (whose
    /// merge is the untruncated union) a rebalance is additionally
    /// invisible against a router that *never* rebalanced.
    pub fn rebalance(&mut self, costs: &CostTable, new_map: ShardMap) {
        self.check_rebalance(costs, &new_map);
        let old_blocks: Vec<(u32, usize)> = (0..self.map.n_shards())
            .map(|k| (self.map.start(k), self.map.len(k)))
            .collect();
        let mut old: Vec<Option<ShardEngine>> = self.shards.drain(..).map(Some).collect();
        let mut shards = Vec::with_capacity(new_map.n_shards());
        for k in 0..new_map.n_shards() {
            let (start, len) = (new_map.start(k), new_map.len(k));
            let survivor = old_blocks
                .iter()
                .position(|&b| b == (start, len))
                .and_then(|j| old[j].take());
            let engine = match survivor {
                Some(mut e) => {
                    e.selector = self.selector_kind.build();
                    e
                }
                None => self.rebuilt_engine(costs, start, len),
            };
            shards.push(engine);
        }
        self.map = new_map;
        self.shards = shards;
        self.rebuild_tree();
        self.memo = DecisionMemo::new();
    }

    /// The executable spec of [`AgentRouter::rebalance`]: rebuilds
    /// **every** block from scratch by history replay, reusing nothing.
    pub fn rebalance_full(&mut self, costs: &CostTable, new_map: ShardMap) {
        self.check_rebalance(costs, &new_map);
        self.shards = (0..new_map.n_shards())
            .map(|k| self.rebuilt_engine(costs, new_map.start(k), new_map.len(k)))
            .collect();
        self.map = new_map;
        self.rebuild_tree();
        self.memo = DecisionMemo::new();
    }

    /// Admits a brand-new server to the running federation: the shard
    /// map grows its **last** block by one, and the owning engine's HTM
    /// cost table and stage-1 index each gain the server through their
    /// proven incremental joins ([`CostTable::push_server`],
    /// [`StaticIndex::push_server`]) — no engine is rebuilt, no other
    /// shard is touched. The caller must have grown (or grow, before the
    /// next decision) the farm-wide cost table with the **same** column,
    /// since stage 2 reads static costs by global id. Returns the new
    /// global id. The new server joins live, idle and unexcluded — and
    /// with an empty ledger its cached group key is stale, so the
    /// owner's group is dirtied like any other mutation.
    pub fn push_server(&mut self, per_problem: Vec<Option<PhaseCosts>>) -> ServerId {
        let id = self.map.push_server();
        let owner = self.shards.len() - 1;
        let durations: Vec<Option<f64>> =
            per_problem.iter().map(|c| c.map(|pc| pc.total())).collect();
        let shard = &mut self.shards[owner];
        shard.index.push_server(&durations);
        shard.htm.push_server(per_problem);
        self.dirty_shard_group(owner);
        id
    }

    /// Simulated completion dates of every committed task, across all
    /// shards (each task is committed in exactly one).
    pub fn simulated_completions(&self) -> HashMap<TaskId, SimTime> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            out.extend(shard.htm.simulated_completions());
        }
        out
    }
}

/// The [`WhatIf`] backend over a federation: queries speak global ids
/// and are routed to the owning shard; batched queries dispatch one
/// `predict_all` per shard run, fanned over the pool when it pays, with
/// every prediction landing in its candidate's slot.
struct FederatedWhatIf<'a> {
    map: &'a ShardMap,
    shards: &'a mut [ShardEngine],
}

impl WhatIf for FederatedWhatIf<'_> {
    fn predict(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction> {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner].htm.predict(now, local, task)
    }

    fn predict_into(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
        out: &mut Prediction,
    ) -> bool {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner].htm.predict_into(now, local, task, out)
    }

    fn predict_all(
        &mut self,
        now: SimTime,
        task: &TaskInstance,
        candidates: &[ServerId],
    ) -> Vec<Option<Prediction>> {
        let mut results: Vec<Option<Prediction>> = vec![None; candidates.len()];
        // Split the candidate list into runs of consecutive same-owner
        // entries. The router emits candidates in ascending global id, so
        // there is exactly one run per shard touched; any other order
        // (a wrapper heuristic's widened list) still groups correctly,
        // just into more runs.
        let mut runs: Vec<(usize, usize, usize)> = Vec::new(); // (owner, from, to)
        let mut i = 0;
        while i < candidates.len() {
            let owner = self.map.owner(candidates[i]);
            let mut j = i + 1;
            while j < candidates.len() && self.map.owner(candidates[j]) == owner {
                j += 1;
            }
            runs.push((owner, i, j));
            i = j;
        }
        let pool = cas_sim::pool::global();
        let ascending_owners = runs.windows(2).all(|w| w[0].0 < w[1].0);
        if runs.len() > 1 && pool.workers() > 1 && ascending_owners {
            // Fan one batch per shard over the pool. Owners ascend, so
            // shards and result slots split into disjoint `&mut` pieces;
            // each prediction lands in its candidate's slot and the
            // reduction is the (already-ordered) results vector itself.
            let mut jobs: Vec<BatchJob<'_>> = Vec::with_capacity(runs.len());
            let mut shards_rest: &mut [ShardEngine] = self.shards;
            let mut shards_off = 0usize;
            let mut results_rest: &mut [Option<Prediction>] = &mut results;
            let mut results_off = 0usize;
            for &(owner, from, to) in &runs {
                let (_, tail) = shards_rest.split_at_mut(owner - shards_off);
                let (shard, tail) = tail.split_first_mut().expect("owner in range");
                shards_rest = tail;
                shards_off = owner + 1;
                let (_, tail) = results_rest.split_at_mut(from - results_off);
                let (out, tail) = tail.split_at_mut(to - from);
                results_rest = tail;
                results_off = to;
                let locals: Vec<ServerId> = candidates[from..to]
                    .iter()
                    .map(|&s| self.map.to_local(owner, s))
                    .collect();
                jobs.push((shard, locals, out));
            }
            pool.scope(|scope| {
                for (shard, locals, out) in jobs {
                    scope.spawn(move || {
                        let preds = shard.htm.predict_all(now, task, &locals);
                        for (slot, p) in out.iter_mut().zip(preds) {
                            *slot = p;
                        }
                    });
                }
            });
        } else {
            let mut locals: Vec<ServerId> = Vec::new();
            for &(owner, from, to) in &runs {
                let shard = &mut self.shards[owner];
                if to - from <= SMALL_RUN_MAX {
                    // Short run: per-candidate queries. `predict` is pure
                    // O(drain) — no per-call slot map over the shard's
                    // state table — and bit-identical to the batch path
                    // (both run the same cached speculative drain).
                    for (slot, &s) in results[from..to].iter_mut().zip(&candidates[from..to]) {
                        let local = self.map.to_local(owner, s);
                        *slot = shard.htm.predict(now, local, task);
                    }
                } else {
                    locals.clear();
                    locals.extend(
                        candidates[from..to]
                            .iter()
                            .map(|&s| self.map.to_local(owner, s)),
                    );
                    let preds = shard.htm.predict_all(now, task, &locals);
                    for (slot, p) in results[from..to].iter_mut().zip(preds) {
                        *slot = p;
                    }
                }
            }
        }
        results
    }

    fn resident_estimate(&mut self, now: SimTime, server: ServerId) -> f64 {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner].htm.resident_estimate(now, local)
    }
}

#[cfg(test)]
mod skyline_edge {
    //! Edge cases of the skyline maintenance and the lazy merge, pinned
    //! as fixed fixtures (the proptests cover the space; these document
    //! the corners by name).

    use super::*;
    use crate::harness::{DiffHarness, Op, SingleAgentReference};
    use cas_platform::{PhaseCosts, Problem};

    /// 6 servers in 3 shards of 2. P0 solvable everywhere with distinct
    /// costs (10, 11, …, 15 — shard 0 holds the global best); P1
    /// solvable only inside shard 0's block.
    fn edge_table() -> CostTable {
        let mut costs = CostTable::new(6);
        costs.add_problem(
            Problem::new("p0", 0.0, 0.0, 0.0),
            (0..6)
                .map(|s| Some(PhaseCosts::new(0.0, 10.0 + s as f64, 0.0)))
                .collect(),
        );
        costs.add_problem(
            Problem::new("p1", 0.0, 0.0, 0.0),
            (0..6)
                .map(|s| (s < 2).then(|| PhaseCosts::new(0.0, 20.0 + s as f64, 0.0)))
                .collect(),
        );
        costs
    }

    fn routers(table: &CostTable, selector: SelectorKind) -> (AgentRouter, AgentRouter) {
        let eager = AgentRouter::new(
            table,
            Some(3),
            selector,
            IndexScoring::default(),
            SyncPolicy::None,
        )
        .with_skyline(false);
        let lazy = AgentRouter::new(
            table,
            Some(3),
            selector,
            IndexScoring::default(),
            SyncPolicy::None,
        );
        (eager, lazy)
    }

    /// Decision ops only (kind 0 = HMCT), alternating the two problems.
    fn decide_ops(n: usize) -> Vec<Op> {
        (0..n)
            .map(|i| Op {
                kind: 0,
                server: 0,
                problem: (i % 2) as u32,
                gap: 1.0,
                // Excluded id beyond the farm: admit everything.
                excl: 99,
            })
            .collect()
    }

    /// A rebalance rebuilds blocks by history replay — and the rebuilt
    /// engines must keep the router's remembered stage-2 settings, not
    /// fall back to the defaults.
    #[test]
    fn rebuilt_blocks_keep_stage2_settings() {
        let table = edge_table();
        let mut router = AgentRouter::new(
            &table,
            Some(3),
            SelectorKind::Exhaustive,
            IndexScoring::default(),
            SyncPolicy::None,
        )
        .with_history(true)
        .with_stage2(Stage2Mode::Full)
        .with_completion_only(true);
        router.set_parallel_stage2(Some(true));
        for i in 0..4u64 {
            let task = TaskInstance::new(TaskId(i), ProblemId(0), SimTime::from_secs(i as f64));
            router.on_commit(task.arrival, ServerId((i % 6) as u32), &task, 10.0);
        }
        // 3 shards of 2 → 2 shards of 3: every block boundary changes, so
        // every engine is rebuilt by replay.
        router.rebalance(&table, ShardMap::new(6, 2));
        assert_eq!(router.n_shards(), 2);
        for shard in &router.shards {
            assert_eq!(shard.htm.stage2_mode(), Stage2Mode::Full);
            assert!(shard.htm.completion_only());
        }
        // And the replayed model state is intact: 4 tasks are active
        // across the federation.
        assert_eq!(router.simulated_completions().len(), 4);
    }

    /// A problem with zero solvable servers in a shard: the shard has no
    /// skyline for it and is skipped without its selector ever running —
    /// and the decisions still match the eager merge exactly.
    #[test]
    fn zero_solvable_shard_is_skipped_without_a_walk() {
        let table = edge_table();
        let harness = DiffHarness::new(table.clone());
        let (mut eager, mut lazy) = routers(&table, SelectorKind::TopK { k: 2 });
        // Only-P1 decisions: shards 1 and 2 hold no P1 solver.
        let ops: Vec<Op> = (0..4)
            .map(|i| Op {
                kind: 0,
                server: 0,
                problem: 1,
                gap: i as f64,
                excl: 99,
            })
            .collect();
        harness.run(&mut eager, &mut lazy, &ops).unwrap();
        let stats = lazy.skyline_stats();
        assert_eq!(stats.decisions, 4);
        assert_eq!(stats.shard_visits, 4, "only shard 0 is ever walked");
        assert_eq!(stats.shard_skips, 8, "shards 1 and 2 skip every time");
        assert_eq!(stats.skip_rate(), 8.0 / 12.0);
    }

    /// The skyline goes stale (the shard's head server takes a heavy
    /// commit) and is repaired by the retract — both transitions visible
    /// through `best_key`, with the lazy merge agreeing with the eager
    /// one before, during and after.
    #[test]
    fn skyline_stale_then_repaired_across_retract() {
        let table = edge_table();
        let harness = DiffHarness::new(table.clone());
        let (mut eager, mut lazy) = routers(&table, SelectorKind::TopK { k: 1 });
        let p0 = ProblemId(0);
        let head_before = lazy.shards[0].skyline(p0).expect("P0 solvable");
        assert_eq!(head_before.1, ServerId(0), "static best is server 0");
        // decide → commit (heavy, lands on server 0 via op.server) →
        // decide → retract → decide.
        let ops = [
            Op {
                kind: 0,
                server: 0,
                problem: 0,
                gap: 1.0,
                excl: 99,
            },
            Op {
                kind: 6,
                server: 0,
                problem: 0,
                gap: 1.0,
                excl: 99,
            },
            Op {
                kind: 0,
                server: 0,
                problem: 0,
                gap: 1.0,
                excl: 99,
            },
            Op {
                kind: 8,
                server: 0,
                problem: 0,
                gap: 1.0,
                excl: 99,
            },
            Op {
                kind: 0,
                server: 0,
                problem: 0,
                gap: 1.0,
                excl: 99,
            },
        ];
        // One resumable session so the skyline can be inspected between
        // instalments without resetting the clock or the commit ledger.
        let mut session = harness.session();
        session.run(&mut eager, &mut lazy, &ops[..2]).unwrap();
        let stale = lazy.shards[0].skyline(p0).expect("still solvable");
        assert_ne!(stale, head_before, "commit must move the skyline");
        assert_eq!(stale.1, ServerId(1), "server 0 now carries backlog");
        session.run(&mut eager, &mut lazy, &ops[2..4]).unwrap();
        let repaired = lazy.shards[0].skyline(p0).expect("still solvable");
        assert_eq!(repaired, head_before, "retract must repair the skyline");
        session.run(&mut eager, &mut lazy, &ops[4..]).unwrap();
        session.finish(&mut eager, &mut lazy).unwrap();
    }

    /// All shards tied on the stage-1 score: the global-id tiebreak must
    /// match the eager merge (the skyline key carries the head's global
    /// id precisely so ties order deterministically).
    #[test]
    fn all_shards_tied_tiebreak_by_global_id() {
        let mut costs = CostTable::new(6);
        costs.add_problem(
            Problem::new("flat", 0.0, 0.0, 0.0),
            (0..6)
                .map(|_| Some(PhaseCosts::new(0.0, 10.0, 0.0)))
                .collect(),
        );
        let harness = DiffHarness::new(costs.clone());
        let (mut eager, mut lazy) = routers(&costs, SelectorKind::TopK { k: 2 });
        let mut ops = decide_ops(6);
        for op in &mut ops {
            op.problem = 0;
        }
        // Interleave commits so ties keep reforming under load.
        ops.insert(
            2,
            Op {
                kind: 6,
                server: 3,
                problem: 0,
                gap: 0.5,
                excl: 99,
            },
        );
        ops.insert(
            5,
            Op {
                kind: 9,
                server: 0,
                problem: 0,
                gap: 0.5,
                excl: 99,
            },
        );
        harness.run(&mut eager, &mut lazy, &ops).unwrap();
        let stats = lazy.skyline_stats();
        // On the all-tied first decision, shard 0's two entries (ids 0,
        // 1) beat both other skylines (ids 2, 4) on the id tiebreak:
        // shards 1 and 2 are skipped, exactly as the eager merge's
        // (score, id) truncation demands.
        assert!(stats.shard_skips > 0, "ties must still allow skipping");
    }

    /// Width-1 shortlists: with `TopK(1)` the cut line is the single
    /// best entry, and every shard whose skyline cannot beat it skips.
    #[test]
    fn width_one_shortlists_skip_all_but_the_best_shard() {
        let table = edge_table();
        let harness = DiffHarness::new(table.clone());
        let (mut eager, mut lazy) = routers(&table, SelectorKind::TopK { k: 1 });
        let ops: Vec<Op> = (0..3)
            .map(|i| Op {
                kind: 0,
                server: 0,
                problem: 0,
                gap: i as f64,
                excl: 99,
            })
            .collect();
        harness.run(&mut eager, &mut lazy, &ops).unwrap();
        let stats = lazy.skyline_stats();
        assert_eq!(stats.decisions, 3);
        // Static costs ascend with the id: shard 0's head (cost 10)
        // beats shards 1 (12) and 2 (14) before any load lands.
        assert_eq!(stats.shard_visits, 3, "only the best shard is walked");
        assert_eq!(stats.shard_skips, 6);
    }

    /// Downing every solver in a shard erases its skyline for that
    /// problem — the lazy merge then skips it unconditionally — and
    /// repairing one server restores it.
    #[test]
    fn crash_drops_shard_skyline_and_repair_restores_it() {
        let table = edge_table();
        let (_, mut lazy) = routers(&table, SelectorKind::TopK { k: 2 });
        let p1 = ProblemId(1);
        assert!(lazy.shards[0].skyline(p1).is_some(), "P1 lives in shard 0");
        assert!(lazy.set_available(ServerId(0), false));
        assert!(lazy.set_available(ServerId(1), false));
        assert!(
            lazy.shards[0].skyline(p1).is_none(),
            "both P1 solvers down: no skyline"
        );
        assert!(!lazy.set_available(ServerId(1), false), "idempotent");
        assert!(lazy.set_available(ServerId(1), true));
        assert_eq!(
            lazy.shards[0].skyline(p1).map(|(_, s)| s),
            Some(ServerId(1)),
            "repair restores the shard's head"
        );
    }

    /// A group whose **every** member shard has zero solvable servers
    /// for the problem holds no group skyline and is pruned wholesale:
    /// its members never appear in the shard counters. With fan-out 1
    /// (groups ≡ shards) on the edge table's P1 — solvable only inside
    /// shard 0 — groups 1 and 2 skip every decision at the group level,
    /// and shard 0, alone inside its visited group, is walked with no
    /// shard-level skip at all. Both the serial group walk and the
    /// forced parallel arm agree with the eager merge.
    #[test]
    fn zero_solvable_group_is_pruned_without_touching_members() {
        let table = edge_table();
        let p1_ops: Vec<Op> = (0..4)
            .map(|i| Op {
                kind: 0,
                server: 0,
                problem: 1,
                gap: i as f64,
                excl: 99,
            })
            .collect();
        for parallel in [false, true] {
            let harness = DiffHarness::new(table.clone());
            let (mut eager, lazy) = routers(&table, SelectorKind::TopK { k: 2 });
            let mut tree = lazy.with_group_size(1).with_parallel_stage1(parallel);
            assert_eq!(tree.tree().n_groups(), 3);
            harness.run(&mut eager, &mut tree, &p1_ops).unwrap();
            let stats = tree.skyline_stats();
            assert_eq!(stats.decisions, 4);
            assert_eq!(stats.group_visits, 4, "only shard 0's group is walked");
            assert_eq!(stats.group_skips, 8, "groups 1 and 2 prune wholesale");
            assert_eq!(stats.shard_visits, 4);
            assert_eq!(
                stats.shard_skips, 0,
                "members of skipped groups never reach the shard counters"
            );
            assert_eq!(stats.group_skip_rate(), 8.0 / 12.0);
        }
    }

    /// Provisioning through the router (`push_server` into the last
    /// shard) is bit-identical to a router *built* over the grown table:
    /// with one shard the partitions coincide exactly, so the S = 1
    /// invariant extends to mid-life joins for a pruning selector.
    #[test]
    fn provision_single_shard_matches_fresh_build() {
        let table = edge_table();
        let column = vec![Some(PhaseCosts::new(0.0, 9.0, 0.0)), None];
        let mut grown = table.clone();
        assert_eq!(grown.push_server(column.clone()), ServerId(6));
        let scoring = IndexScoring::default();
        let mut fresh = AgentRouter::new(
            &grown,
            Some(1),
            SelectorKind::TopK { k: 2 },
            scoring,
            SyncPolicy::None,
        );
        let mut joined = AgentRouter::new(
            &table,
            Some(1),
            SelectorKind::TopK { k: 2 },
            scoring,
            SyncPolicy::None,
        );
        assert_eq!(joined.push_server(column), ServerId(6));
        assert_eq!(joined.map().n_servers(), 7);
        // The new server (static P0 cost 9) must immediately head the
        // skyline — it beats every incumbent (costs 10..15).
        assert_eq!(
            joined.shards[0].skyline(ProblemId(0)).map(|(_, s)| s),
            Some(ServerId(6))
        );
        let harness = DiffHarness::new(grown);
        let ops: Vec<Op> = (0..6)
            .map(|i| Op {
                kind: (i % 3) as u32 * 3, // decide / decide / commit mix
                server: 6,
                problem: 0,
                gap: 1.0,
                excl: 99,
            })
            .collect();
        harness.run(&mut fresh, &mut joined, &ops).unwrap();
    }

    /// Provisioning under the exhaustive selector is
    /// partition-invisible: the joined router's last block grew (blocks
    /// 2+2+3) while a fresh build re-balances (3+2+2), yet the
    /// untruncated union merge makes both bit-identical to the
    /// single-agent reference over the grown farm.
    #[test]
    fn provision_under_exhaustive_is_partition_invisible() {
        let table = edge_table();
        let column = vec![
            Some(PhaseCosts::new(0.0, 9.0, 0.0)),
            Some(PhaseCosts::new(0.0, 19.0, 0.0)),
        ];
        let mut grown = table.clone();
        grown.push_server(column.clone());
        let scoring = IndexScoring::default();
        let mut reference =
            SingleAgentReference::new(&grown, SelectorKind::Exhaustive, SyncPolicy::None);
        let mut joined = AgentRouter::new(
            &table,
            Some(3),
            SelectorKind::Exhaustive,
            scoring,
            SyncPolicy::None,
        );
        joined.push_server(column);
        let harness = DiffHarness::new(grown);
        let mut ops = decide_ops(6);
        ops.insert(
            2,
            Op {
                kind: 6,
                server: 6,
                problem: 0,
                gap: 0.5,
                excl: 99,
            },
        );
        ops.push(Op {
            kind: 8,
            server: 6,
            problem: 0,
            gap: 0.5,
            excl: 99,
        });
        harness.run(&mut reference, &mut joined, &ops).unwrap();
    }

    /// Rebalance is gated on history recording: without the op log a
    /// new block boundary could not be populated.
    #[test]
    #[should_panic(expected = "history recording")]
    fn rebalance_without_history_panics() {
        let table = edge_table();
        let (_, mut lazy) = routers(&table, SelectorKind::TopK { k: 2 });
        let map = ShardMap::new(6, 2);
        lazy.rebalance(&table, map);
    }

    /// The single-agent fast path and exhaustive selectors never enter
    /// the lazy merge: their stats stay zero.
    #[test]
    fn skyline_stats_stay_zero_off_the_lazy_path() {
        let table = edge_table();
        let harness = DiffHarness::new(table.clone());
        // Exhaustive federated: full union semantics, no skyline.
        let scoring = IndexScoring::default();
        let mut a = AgentRouter::new(
            &table,
            Some(3),
            SelectorKind::Exhaustive,
            scoring,
            SyncPolicy::None,
        );
        let mut b = AgentRouter::new(
            &table,
            Some(3),
            SelectorKind::Exhaustive,
            scoring,
            SyncPolicy::None,
        )
        .with_skyline(false);
        harness.run(&mut a, &mut b, &decide_ops(4)).unwrap();
        assert_eq!(a.skyline_stats(), SkylineStats::default());
        // Single-agent fast path.
        let mut single = AgentRouter::new(
            &table,
            None,
            SelectorKind::TopK { k: 2 },
            scoring,
            SyncPolicy::None,
        );
        let mut single_b = AgentRouter::new(
            &table,
            None,
            SelectorKind::TopK { k: 2 },
            scoring,
            SyncPolicy::None,
        );
        harness
            .run(&mut single, &mut single_b, &decide_ops(4))
            .unwrap();
        assert_eq!(single.skyline_stats(), SkylineStats::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::harness::{DiffHarness, Op, SingleAgentReference};
    use cas_platform::PhaseCosts;
    use proptest::prelude::*;

    const N_SERVERS: usize = 6;
    /// Farm width of the skyline differential: big enough that
    /// `S = 16` is a real federation, not a clamp.
    const N_SERVERS_WIDE: usize = 18;
    /// Farm width of the tree differential: big enough that `S = 64` is
    /// a real federation and small group sizes give a deep tree.
    const N_SERVERS_HUGE: usize = 72;
    const N_PROBLEMS: usize = 2;

    /// `n_servers`-wide table; server 0 always solves everything so no
    /// problem is globally unsolvable, the rest follow `solvable`.
    fn build_table(n_servers: usize, costs: &[PhaseCosts], solvable: &[bool]) -> CostTable {
        let mut table = CostTable::new(n_servers);
        for p in 0..N_PROBLEMS {
            let row = (0..n_servers)
                .map(|s| {
                    let k = p * n_servers + s;
                    (s == 0 || solvable[k]).then_some(costs[k])
                })
                .collect();
            table.add_problem(
                cas_platform::Problem::new(format!("p{p}"), 0.1, 0.1, 64.0),
                row,
            );
        }
        table
    }

    fn selector_of(pick: usize) -> SelectorKind {
        [
            SelectorKind::Exhaustive,
            SelectorKind::TopK { k: 2 },
            SelectorKind::TopK { k: 64 },
            SelectorKind::Adaptive { k_min: 1, k_max: 3 },
        ][pick]
    }

    /// Drives the router decision-by-decision against the inline
    /// single-agent reference (the harness's executable spec) over
    /// arbitrary interleavings of decide / commit / retract / complete:
    /// picks and winning predictions must agree **bit for bit**.
    fn run_reference_differential(
        n_servers: usize,
        costs: Vec<PhaseCosts>,
        solvable: Vec<bool>,
        n_shards: usize,
        selector: SelectorKind,
        sync: SyncPolicy,
        ops: Vec<(u32, u32, u32, f64, u32)>,
    ) -> Result<(), TestCaseError> {
        let table = build_table(n_servers, &costs, &solvable);
        let harness = DiffHarness::new(table.clone());
        let mut reference = SingleAgentReference::new(&table, selector, sync);
        let mut router = AgentRouter::new(
            &table,
            Some(n_shards),
            selector,
            IndexScoring::default(),
            sync,
        );
        prop_assert_eq!(router.n_shards(), n_shards);
        prop_assert!(router.is_federated());
        let ops: Vec<Op> = ops.into_iter().map(Op::from).collect();
        if let Err(e) = harness.run(&mut reference, &mut router, &ops) {
            return Err(TestCaseError::fail(e));
        }
        Ok(())
    }

    /// Drives the skyline-merged router against the eager full-scatter
    /// router (PR-4 semantics, `with_skyline(false)`): the lazy merge
    /// must be a pure pruning of the *walk*, never of the result.
    fn run_skyline_differential(
        n_servers: usize,
        costs: Vec<PhaseCosts>,
        solvable: Vec<bool>,
        n_shards: usize,
        selector: SelectorKind,
        sync: SyncPolicy,
        ops: Vec<(u32, u32, u32, f64, u32)>,
    ) -> Result<(), TestCaseError> {
        let table = build_table(n_servers, &costs, &solvable);
        let harness = DiffHarness::new(table.clone());
        let scoring = IndexScoring::default();
        let mut eager =
            AgentRouter::new(&table, Some(n_shards), selector, scoring, sync).with_skyline(false);
        let mut lazy = AgentRouter::new(&table, Some(n_shards), selector, scoring, sync);
        let ops: Vec<Op> = ops.into_iter().map(Op::from).collect();
        if let Err(e) = harness.run(&mut eager, &mut lazy, &ops) {
            return Err(TestCaseError::fail(e));
        }
        // The eager arm never enters the lazy merge; the lazy arm
        // accounts for every shard on every pruned decision.
        prop_assert_eq!(eager.skyline_stats(), SkylineStats::default());
        let stats = lazy.skyline_stats();
        prop_assert_eq!(
            stats.shard_visits + stats.shard_skips,
            stats.decisions * n_shards as u64
        );
        Ok(())
    }

    /// Drives the group-walking router (and, when `parallel`, the
    /// forced parallel stage-1 arm) against the flat per-shard walk
    /// (`with_tree(false)` — the executable spec): the group level must
    /// be a pure pruning of the *walk*, never of the result. Also pins
    /// the per-level counter invariants of [`SkylineStats`].
    #[allow(clippy::too_many_arguments)]
    fn run_tree_differential(
        n_servers: usize,
        costs: Vec<PhaseCosts>,
        solvable: Vec<bool>,
        n_shards: usize,
        group_size: usize,
        selector: SelectorKind,
        sync: SyncPolicy,
        ops: Vec<(u32, u32, u32, f64, u32)>,
        parallel: bool,
    ) -> Result<(), TestCaseError> {
        let table = build_table(n_servers, &costs, &solvable);
        let harness = DiffHarness::new(table.clone());
        let scoring = IndexScoring::default();
        let mut flat = AgentRouter::new(&table, Some(n_shards), selector, scoring, sync)
            .with_tree(false)
            .with_parallel_stage1(false);
        let mut tree = AgentRouter::new(&table, Some(n_shards), selector, scoring, sync)
            .with_group_size(group_size)
            .with_parallel_stage1(parallel);
        let n_shards = flat.n_shards() as u64; // post-clamp
        let n_groups = tree.tree().n_groups() as u64;
        let grouped = !tree.tree().is_empty();
        let ops: Vec<Op> = ops.into_iter().map(Op::from).collect();
        if let Err(e) = harness.run(&mut flat, &mut tree, &ops) {
            return Err(TestCaseError::fail(e));
        }
        let fs = flat.skyline_stats();
        prop_assert_eq!(fs.group_visits, 0);
        prop_assert_eq!(fs.group_skips, 0);
        prop_assert_eq!(fs.shard_visits + fs.shard_skips, fs.decisions * n_shards);
        let ts = tree.skyline_stats();
        prop_assert_eq!(ts.decisions, fs.decisions);
        if grouped {
            // Every group visited or skipped; shard counters only cover
            // members of visited groups.
            prop_assert_eq!(ts.group_visits + ts.group_skips, ts.decisions * n_groups);
            prop_assert!(ts.shard_visits + ts.shard_skips <= ts.decisions * n_shards);
        } else {
            // Degenerate tree: both arms ran the flat walk.
            prop_assert_eq!(ts.group_visits, 0);
            prop_assert_eq!(ts.group_skips, 0);
            prop_assert_eq!(ts.shard_visits + ts.shard_skips, ts.decisions * n_shards);
        }
        Ok(())
    }

    prop_compose! {
        fn arb_costs()(i in 0.0f64..3.0, c in 0.1f64..30.0, o in 0.0f64..3.0) -> PhaseCosts {
            PhaseCosts::new(i, c, o)
        }
    }

    fn arb_ops(n_servers: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, f64, u32)>> {
        proptest::collection::vec(
            // (op kind, server, problem, time gap, excluded server)
            (
                0u32..10,
                0u32..n_servers as u32,
                0u32..N_PROBLEMS as u32,
                0.0f64..15.0,
                0u32..n_servers as u32,
            ),
            1..40,
        )
    }

    /// Like [`arb_ops`] but the kind range also covers crashes (10) and
    /// repairs (11), so runs exercise crash retraction, the availability
    /// hooks and decisions over partially-dead farms.
    fn arb_churn_ops(n_servers: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, f64, u32)>> {
        proptest::collection::vec(
            (
                0u32..12,
                0u32..n_servers as u32,
                0u32..N_PROBLEMS as u32,
                0.0f64..15.0,
                0u32..n_servers as u32,
            ),
            1..40,
        )
    }

    /// Runs `prefix`, re-partitions both routers to the same new map —
    /// one through the incremental [`AgentRouter::rebalance`], the other
    /// through the rebuild-everything [`AgentRouter::rebalance_full`]
    /// spec — then demands the `suffix` stays bit-identical and the
    /// resting models agree.
    #[allow(clippy::too_many_arguments)]
    fn run_rebalance_differential(
        n_servers: usize,
        costs: Vec<PhaseCosts>,
        solvable: Vec<bool>,
        shards_before: usize,
        shards_after: usize,
        selector: SelectorKind,
        sync: SyncPolicy,
        prefix: Vec<(u32, u32, u32, f64, u32)>,
        suffix: Vec<(u32, u32, u32, f64, u32)>,
    ) -> Result<(), TestCaseError> {
        let table = build_table(n_servers, &costs, &solvable);
        let harness = DiffHarness::new(table.clone());
        let scoring = IndexScoring::default();
        let mut incremental =
            AgentRouter::new(&table, Some(shards_before), selector, scoring, sync)
                .with_history(true);
        let mut full = AgentRouter::new(&table, Some(shards_before), selector, scoring, sync)
            .with_history(true);
        let prefix: Vec<Op> = prefix.into_iter().map(Op::from).collect();
        let suffix: Vec<Op> = suffix.into_iter().map(Op::from).collect();
        let mut session = harness.session();
        if let Err(e) = session.run(&mut incremental, &mut full, &prefix) {
            return Err(TestCaseError::fail(format!("prefix: {e}")));
        }
        let new_map = ShardMap::new(n_servers, shards_after);
        incremental.rebalance(&table, new_map.clone());
        full.rebalance_full(&table, new_map);
        prop_assert_eq!(incremental.n_shards(), full.n_shards());
        prop_assert_eq!(incremental.map(), full.map());
        if let Err(e) = session.run(&mut incremental, &mut full, &suffix) {
            return Err(TestCaseError::fail(format!("suffix: {e}")));
        }
        if let Err(e) = session.finish(&mut incremental, &mut full) {
            return Err(TestCaseError::fail(e));
        }
        Ok(())
    }

    /// The invisibility half of the rebalance proof, under the
    /// exhaustive selector (whose merge is the untruncated union, so a
    /// partition change cannot alter candidate sets): a router
    /// re-sharded mid-run stays bit-identical to one that **never**
    /// rebalanced.
    #[allow(clippy::too_many_arguments)]
    fn run_rebalance_invariance(
        n_servers: usize,
        costs: Vec<PhaseCosts>,
        solvable: Vec<bool>,
        shards_before: usize,
        shards_after: usize,
        sync: SyncPolicy,
        prefix: Vec<(u32, u32, u32, f64, u32)>,
        suffix: Vec<(u32, u32, u32, f64, u32)>,
    ) -> Result<(), TestCaseError> {
        let table = build_table(n_servers, &costs, &solvable);
        let harness = DiffHarness::new(table.clone());
        let scoring = IndexScoring::default();
        let selector = SelectorKind::Exhaustive;
        let mut fixed = AgentRouter::new(&table, Some(shards_before), selector, scoring, sync);
        let mut moved = AgentRouter::new(&table, Some(shards_before), selector, scoring, sync)
            .with_history(true);
        let prefix: Vec<Op> = prefix.into_iter().map(Op::from).collect();
        let suffix: Vec<Op> = suffix.into_iter().map(Op::from).collect();
        let mut session = harness.session();
        if let Err(e) = session.run(&mut fixed, &mut moved, &prefix) {
            return Err(TestCaseError::fail(format!("prefix: {e}")));
        }
        moved.rebalance(&table, ShardMap::new(n_servers, shards_after));
        if let Err(e) = session.run(&mut fixed, &mut moved, &suffix) {
            return Err(TestCaseError::fail(format!("suffix: {e}")));
        }
        if let Err(e) = session.finish(&mut fixed, &mut moved) {
            return Err(TestCaseError::fail(e));
        }
        Ok(())
    }

    proptest! {
        /// `--shards 1` ≡ the unsharded engine, per decision, for every
        /// selector backend (the S = 1 invariant of the module docs).
        #[test]
        fn router_single_shard_is_bitwise_reference(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            ops in arb_ops(N_SERVERS),
        ) {
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_reference_differential(
                N_SERVERS, costs, solvable, 1, selector_of(selector_pick), sync, ops,
            )?;
        }

        /// Under the exhaustive selector the scatter–merge–gather router
        /// is bit-identical to the single agent at **any** shard count:
        /// the union of per-shard every-solver loops is the every-solver
        /// loop.
        #[test]
        fn router_exhaustive_any_shard_count_is_bitwise_reference(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            n_shards in 2usize..N_SERVERS + 1,
            force_finish in proptest::bool::ANY,
            ops in arb_ops(N_SERVERS),
        ) {
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_reference_differential(
                N_SERVERS, costs, solvable, n_shards, SelectorKind::Exhaustive, sync, ops,
            )?;
        }

        /// The tentpole property: the skyline-merged router is
        /// **bit-identical** to the PR-4 eager full-scatter router over
        /// arbitrary interleavings, for every selector backend and
        /// `S ∈ {1, 2, 3, 16}` on an 18-server farm — the skyline prunes
        /// the merge's walk, never its semantics.
        #[test]
        fn skyline_merge_is_pure_pruning_of_eager_merge(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS_WIDE * N_PROBLEMS),
            solvable in proptest::collection::vec(
                proptest::bool::ANY, N_SERVERS_WIDE * N_PROBLEMS,
            ),
            shard_pick in 0usize..4,
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            ops in arb_ops(N_SERVERS_WIDE),
        ) {
            let n_shards = [1usize, 2, 3, 16][shard_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_skyline_differential(
                N_SERVERS_WIDE, costs, solvable, n_shards, selector_of(selector_pick), sync, ops,
            )?;
        }

        /// Crash-retraction equivalence: over op streams that crash and
        /// repair servers (retracting every in-flight task of the
        /// victim), `--shards 1` stays bitwise the single-agent
        /// reference for every selector backend.
        #[test]
        fn router_crash_retraction_is_bitwise_reference(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            ops in arb_churn_ops(N_SERVERS),
        ) {
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_reference_differential(
                N_SERVERS, costs, solvable, 1, selector_of(selector_pick), sync, ops,
            )?;
        }

        /// Crash-retraction equivalence across a real federation: under
        /// the exhaustive selector any shard count stays bitwise the
        /// single-agent reference through crashes and repairs.
        #[test]
        fn router_exhaustive_crash_retraction_any_shard_count(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            n_shards in 2usize..N_SERVERS + 1,
            force_finish in proptest::bool::ANY,
            ops in arb_churn_ops(N_SERVERS),
        ) {
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_reference_differential(
                N_SERVERS, costs, solvable, n_shards, SelectorKind::Exhaustive, sync, ops,
            )?;
        }

        /// The lazy skyline merge stays a pure pruning of the eager
        /// scatter when servers crash and repair mid-run (availability
        /// flips move shard skylines under the merge's feet).
        #[test]
        fn skyline_merge_survives_churn_ops(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS_WIDE * N_PROBLEMS),
            solvable in proptest::collection::vec(
                proptest::bool::ANY, N_SERVERS_WIDE * N_PROBLEMS,
            ),
            shard_pick in 0usize..4,
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            ops in arb_churn_ops(N_SERVERS_WIDE),
        ) {
            let n_shards = [1usize, 2, 3, 16][shard_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_skyline_differential(
                N_SERVERS_WIDE, costs, solvable, n_shards, selector_of(selector_pick), sync, ops,
            )?;
        }

        /// The rebalance proof, half one: re-partitioning mid-run through
        /// the incremental block-reusing `rebalance` is **bit-identical**
        /// — on the suffix ops and the resting model — to the
        /// rebuild-everything `rebalance_full` spec, for every selector
        /// backend, shard count transition and fault schedule.
        #[test]
        fn rebalance_incremental_is_bitwise_full_rebuild(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS_WIDE * N_PROBLEMS),
            solvable in proptest::collection::vec(
                proptest::bool::ANY, N_SERVERS_WIDE * N_PROBLEMS,
            ),
            before_pick in 0usize..4,
            after_pick in 0usize..4,
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            prefix in arb_churn_ops(N_SERVERS_WIDE),
            suffix in arb_churn_ops(N_SERVERS_WIDE),
        ) {
            let shards_before = [1usize, 2, 3, 16][before_pick];
            let shards_after = [1usize, 2, 4, 9][after_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_rebalance_differential(
                N_SERVERS_WIDE, costs, solvable, shards_before, shards_after,
                selector_of(selector_pick), sync, prefix, suffix,
            )?;
        }

        /// The two-level tentpole property: the group-walking router is
        /// **bit-identical** to the flat per-shard walk over arbitrary
        /// interleavings — crashes and repairs included — for every
        /// selector backend, `S ∈ {1, 2, 16, 64}` and group fan-outs
        /// down to one shard per group, on a 72-server farm.
        #[test]
        fn tree_walk_is_pure_pruning_of_flat_walk(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS_HUGE * N_PROBLEMS),
            solvable in proptest::collection::vec(
                proptest::bool::ANY, N_SERVERS_HUGE * N_PROBLEMS,
            ),
            shard_pick in 0usize..4,
            group_pick in 0usize..4,
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            ops in arb_churn_ops(N_SERVERS_HUGE),
        ) {
            let n_shards = [1usize, 2, 16, 64][shard_pick];
            let group_size = [1usize, 2, 4, 16][group_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_tree_differential(
                N_SERVERS_HUGE, costs, solvable, n_shards, group_size,
                selector_of(selector_pick), sync, ops, false,
            )?;
        }

        /// The parallel stage-1 arm, forced on (so the proof holds on
        /// single-core hosts too): the eager per-group scatter with
        /// slot-indexed reduction is **bit-identical** to the flat
        /// serial walk for every selector backend, shard count and
        /// fan-out.
        #[test]
        fn parallel_stage1_is_bitwise_the_serial_walk(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS_HUGE * N_PROBLEMS),
            solvable in proptest::collection::vec(
                proptest::bool::ANY, N_SERVERS_HUGE * N_PROBLEMS,
            ),
            shard_pick in 0usize..4,
            group_pick in 0usize..4,
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            ops in arb_churn_ops(N_SERVERS_HUGE),
        ) {
            let n_shards = [1usize, 2, 16, 64][shard_pick];
            let group_size = [1usize, 2, 4, 16][group_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_tree_differential(
                N_SERVERS_HUGE, costs, solvable, n_shards, group_size,
                selector_of(selector_pick), sync, ops, true,
            )?;
        }

        /// Group-skyline staleness across a rebalance: both routers run
        /// the group walk (fan-out 2), one re-partitioned through the
        /// incremental `rebalance` (which rebuilds the tree and drops
        /// every cached group key), the other through the full-rebuild
        /// spec — prefix and suffix full of crashes and repairs, picks
        /// bit-identical throughout, resting models equal.
        #[test]
        fn tree_rebalance_stays_bitwise_across_churn(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS_WIDE * N_PROBLEMS),
            solvable in proptest::collection::vec(
                proptest::bool::ANY, N_SERVERS_WIDE * N_PROBLEMS,
            ),
            before_pick in 0usize..3,
            after_pick in 0usize..3,
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            prefix in arb_churn_ops(N_SERVERS_WIDE),
            suffix in arb_churn_ops(N_SERVERS_WIDE),
        ) {
            let shards_before = [2usize, 9, 16][before_pick];
            let shards_after = [2usize, 4, 16][after_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            let table = build_table(N_SERVERS_WIDE, &costs, &solvable);
            let harness = DiffHarness::new(table.clone());
            let scoring = IndexScoring::default();
            let selector = selector_of(selector_pick);
            let mut incremental =
                AgentRouter::new(&table, Some(shards_before), selector, scoring, sync)
                    .with_history(true)
                    .with_group_size(2);
            let mut full = AgentRouter::new(&table, Some(shards_before), selector, scoring, sync)
                .with_history(true)
                .with_group_size(2);
            let prefix: Vec<Op> = prefix.into_iter().map(Op::from).collect();
            let suffix: Vec<Op> = suffix.into_iter().map(Op::from).collect();
            let mut session = harness.session();
            if let Err(e) = session.run(&mut incremental, &mut full, &prefix) {
                return Err(TestCaseError::fail(format!("prefix: {e}")));
            }
            let new_map = ShardMap::new(N_SERVERS_WIDE, shards_after);
            incremental.rebalance(&table, new_map.clone());
            full.rebalance_full(&table, new_map);
            prop_assert_eq!(incremental.tree().n_groups(), full.tree().n_groups());
            if let Err(e) = session.run(&mut incremental, &mut full, &suffix) {
                return Err(TestCaseError::fail(format!("suffix: {e}")));
            }
            if let Err(e) = session.finish(&mut incremental, &mut full) {
                return Err(TestCaseError::fail(e));
            }
        }

        /// The rebalance proof, half two: under the exhaustive selector a
        /// mid-run re-shard is invisible — bit-identical to a router that
        /// never rebalanced at all.
        #[test]
        fn rebalance_is_invisible_under_exhaustive_selector(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS_WIDE * N_PROBLEMS),
            solvable in proptest::collection::vec(
                proptest::bool::ANY, N_SERVERS_WIDE * N_PROBLEMS,
            ),
            before_pick in 0usize..4,
            after_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            prefix in arb_churn_ops(N_SERVERS_WIDE),
            suffix in arb_churn_ops(N_SERVERS_WIDE),
        ) {
            let shards_before = [1usize, 2, 3, 16][before_pick];
            let shards_after = [1usize, 2, 4, 9][after_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_rebalance_invariance(
                N_SERVERS_WIDE, costs, solvable, shards_before, shards_after, sync,
                prefix, suffix,
            )?;
        }
    }
}

//! The shard federation: per-shard decision engines behind a
//! deterministic router.
//!
//! One `middleware::engine` used to own one [`Htm`], one [`StaticIndex`]
//! and one selector for the whole farm, so every per-decision scratch
//! buffer, every ranking tree and every repair hook scaled with the farm
//! size — the structural cap that kept the standing campaign at 1k
//! servers however cheap each individual decision got. The federation is
//! the same move hierarchical client-agent-server deployments make:
//! partition the farm ([`ShardMap`], deterministic and contiguous) and
//! give each shard its **own** engine ([`ShardEngine`]) holding an HTM,
//! a static index and a stage-1 selector over a *restricted* cost table
//! — every per-server structure is `O(n/S)`, not `O(n)`.
//!
//! [`AgentRouter`] is the thin layer on top. One decision runs:
//!
//! 1. **Stage 1, scatter**: every shard's selector proposes a shortlist
//!    from its local index (fanned over [`cas_sim::pool`] when it pays;
//!    results land in per-shard scratch slots, so worker count cannot
//!    change them).
//! 2. **Merge**: shortlists merge by stage-1 score (ties by global
//!    server id) and truncate to the widest shard's width — under an
//!    exhaustive selector the union is kept untruncated, preserving the
//!    paper's every-solver loop. The merged list is emitted in ascending
//!    global id, the order the heuristics' tie-breaks require.
//! 3. **Stage 2, gather**: the heuristic runs unchanged over a
//!    [`SchedView`] whose [`WhatIf`] backend routes each what-if query
//!    to the owning shard and dispatches batched `predict_all` calls
//!    per shard (slot-indexed reduction, bit-identical regardless of
//!    worker count).
//!
//! Commit/retract/complete hooks route to the owning shard **only**, so
//! model repair and index re-ranking cost stops scaling with farm size.
//!
//! # The `S = 1` invariant
//!
//! A federation of one shard is **bit-identical** to the single-agent
//! engine: the restricted cost table is the full table, local ids equal
//! global ids, the merge of one shortlist is that shortlist, and stage 2
//! batches over the same HTM. The differential proptests in this module
//! drive the router against an inline replica of the single-agent
//! decision loop over arbitrary commit/decide/retract/complete
//! interleavings, and the engine's end-to-end tests assert whole-campaign
//! record equality for every heuristic × selector backend. With more
//! shards, pruning selectors may legitimately diverge (each shard adapts
//! its own width); an exhaustive selector must not — and that too is
//! asserted end to end.

use cas_core::heuristics::{DecisionMemo, Heuristic, SchedView};
use cas_core::selector::{CandidateSelector, SelectorInput};
use cas_core::whatif::WhatIf;
use cas_core::{Htm, Prediction, SelectorKind, SyncPolicy};
use cas_platform::{
    CostTable, IndexScoring, LoadReport, ProblemId, ServerId, ShardMap, StaticIndex, TaskId,
    TaskInstance,
};
use cas_sim::{RngStream, SimTime};
use std::collections::HashMap;

/// One per-shard stage-2 batch job: the shard, the shard-local candidate
/// ids, and the (disjoint) slice of the result vector its predictions
/// land in.
type BatchJob<'a> = (
    &'a mut ShardEngine,
    Vec<ServerId>,
    &'a mut [Option<Prediction>],
);

/// Per-shard candidate runs at most this long answer through per-candidate
/// [`Htm::predict`] instead of [`Htm::predict_all`]: the batch path pays an
/// O(shard-width) slot map per call, which a federation exists to avoid —
/// and the two paths are bit-identical (the batch is defined as, and
/// proptested against, per-candidate prediction).
const SMALL_RUN_MAX: usize = 16;

/// One shard's complete decision state: the HTM, the stage-1 index and
/// the stage-1 selector for a contiguous block of the farm, all built
/// over the block's *restricted* cost table and addressed by shard-local
/// server ids (`global = shard start + local`).
pub struct ShardEngine {
    /// First global server id of this shard's block.
    start: u32,
    htm: Htm,
    index: StaticIndex,
    selector: Box<dyn CandidateSelector>,
    /// Stage-1 scratch: the selector's shortlist, local ids, ascending.
    shortlist: Vec<ServerId>,
    /// Stage-1 scratch: the selector's scored shortlist, local ids.
    scored_local: Vec<(ServerId, f64)>,
    /// Stage-1 scratch: `(score bits, global id)` for the router's merge.
    scored: Vec<(u64, ServerId)>,
}

impl ShardEngine {
    fn new(
        costs: &CostTable,
        start: u32,
        len: usize,
        selector: SelectorKind,
        scoring: IndexScoring,
        sync: SyncPolicy,
    ) -> Self {
        let local_costs = costs.restrict(start, len);
        ShardEngine {
            start,
            index: StaticIndex::with_scoring(&local_costs, scoring),
            htm: Htm::new(local_costs, sync),
            selector: selector.build(),
            shortlist: Vec::new(),
            scored_local: Vec::new(),
            scored: Vec::new(),
        }
    }

    /// Runs the shard's stage-1 selector. `admit` speaks global ids; the
    /// shortlist lands in `self.shortlist` (local ids) and, when
    /// `score_for_merge` is set, in `self.scored` as `(score bits,
    /// global id)` pairs for the router's merge.
    fn stage1(
        &mut self,
        problem: ProblemId,
        admit: &(dyn Fn(ServerId) -> bool + Sync),
        score_for_merge: bool,
    ) {
        let ShardEngine {
            start,
            htm,
            index,
            selector,
            shortlist,
            scored_local,
            scored,
        } = self;
        let start = *start;
        let local_admit = move |s: ServerId| admit(ServerId(s.0 + start));
        if !score_for_merge {
            selector.shortlist(
                SelectorInput {
                    problem,
                    costs: htm.costs(),
                    index,
                },
                &local_admit,
                shortlist,
            );
            return;
        }
        // Scores are non-negative finite, so the IEEE-754 bit pattern is
        // an order-preserving sort key (the same trick the index's
        // ranking trees use). Selectors that track scores hand them out
        // directly; the rest fall back to shortlist + index lookups.
        scored.clear();
        scored_local.clear();
        if selector.shortlist_scored(
            SelectorInput {
                problem,
                costs: htm.costs(),
                index,
            },
            &local_admit,
            scored_local,
        ) {
            for &(local, score) in scored_local.iter() {
                scored.push((score.to_bits(), ServerId(local.0 + start)));
            }
        } else {
            selector.shortlist(
                SelectorInput {
                    problem,
                    costs: htm.costs(),
                    index,
                },
                &local_admit,
                shortlist,
            );
            for &local in shortlist.iter() {
                let score = index
                    .score(problem, local)
                    .expect("shortlisted implies solvable");
                scored.push((score.to_bits(), ServerId(local.0 + start)));
            }
        }
    }

    /// This shard's HTM (spans only its own block of the farm).
    pub fn htm(&self) -> &Htm {
        &self.htm
    }
}

/// Everything one scheduling decision needs from the world, read-only.
pub struct DecisionInputs<'a> {
    /// Decision time.
    pub now: SimTime,
    /// The task to place.
    pub task: TaskInstance,
    /// The farm-wide cost table (stage 2 speaks global ids).
    pub costs: &'a CostTable,
    /// Per-server load reports, global ids.
    pub reports: &'a [LoadReport],
    /// Per-server admission limits (RAM + swap), MB, global ids.
    pub server_mem: &'a [f64],
    /// Which servers the agent may consider (excludes retry-refused and
    /// known-collapsed servers).
    pub admit: &'a (dyn Fn(ServerId) -> bool + Sync),
}

/// The federated agent: per-shard engines behind the deterministic
/// scatter–merge–gather router described in the module docs.
pub struct AgentRouter {
    map: ShardMap,
    shards: Vec<ShardEngine>,
    /// `true` runs the full scatter/merge router even with one shard
    /// (`Sharding::Federated`); `false` is the single-agent fast path
    /// (requires exactly one shard).
    federated: bool,
    /// Exhaustive selectors merge by union, without truncation.
    exhaustive: bool,
    /// Run-wide decision memo lent to each decision's `SchedView`
    /// (dense by *global* server index).
    memo: DecisionMemo,
    /// Merge scratch: `(score bits, global id)` across shards.
    merged: Vec<(u64, ServerId)>,
    /// Merge scratch: the final candidate list, ascending global id.
    candidates: Vec<ServerId>,
}

impl AgentRouter {
    /// Builds the agent for a farm described by `costs`. `shards = None`
    /// is the single-agent path; `Some(s)` federates into `s` shards
    /// (clamped so no shard is empty).
    pub fn new(
        costs: &CostTable,
        shards: Option<usize>,
        selector: SelectorKind,
        scoring: IndexScoring,
        sync: SyncPolicy,
    ) -> Self {
        let n = costs.n_servers();
        let (federated, count) = match shards {
            None => (false, 1),
            Some(s) => (true, s),
        };
        let map = ShardMap::new(n, count);
        let shards = (0..map.n_shards())
            .map(|k| ShardEngine::new(costs, map.start(k), map.len(k), selector, scoring, sync))
            .collect();
        AgentRouter {
            map,
            shards,
            federated,
            exhaustive: selector == SelectorKind::Exhaustive,
            memo: DecisionMemo::new(),
            merged: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the scatter/merge router path is active (as opposed to
    /// the single-agent fast path).
    pub fn is_federated(&self) -> bool {
        self.federated
    }

    /// The partition.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard engine owning `server`.
    pub fn shard_for(&self, server: ServerId) -> &ShardEngine {
        &self.shards[self.map.owner(server)]
    }

    /// Shard 0's HTM. With a single shard (the default configuration)
    /// this is the whole farm's model, preserving the pre-federation
    /// `GridWorld::htm()` surface; with more shards it spans only the
    /// first block — use [`AgentRouter::shard_for`] for the rest.
    pub fn htm(&self) -> &Htm {
        &self.shards[0].htm
    }

    /// Mutable variant of [`AgentRouter::htm`] (Gantt recording).
    pub fn htm_mut(&mut self) -> &mut Htm {
        &mut self.shards[0].htm
    }

    /// Runs one full two-stage decision and reports the pick to the
    /// owning shard's selector. Deterministic: identical inputs produce
    /// identical picks on any host, any worker count.
    pub fn decide(
        &mut self,
        inp: DecisionInputs<'_>,
        heuristic: &mut dyn Heuristic,
        tie_rng: &mut RngStream,
    ) -> Option<ServerId> {
        if !self.federated {
            // Single-agent fast path: shard 0 is the farm; no merge, no
            // translation — byte for byte the pre-federation decision.
            let shard = &mut self.shards[0];
            shard.stage1(inp.task.problem, inp.admit, false);
            let candidates = shard.shortlist.clone();
            let pick = {
                let mut view = SchedView::new(
                    inp.now,
                    inp.task,
                    candidates,
                    inp.costs,
                    inp.reports,
                    &mut shard.htm,
                    tie_rng,
                )
                .with_server_mem(inp.server_mem)
                .with_memo(&mut self.memo);
                heuristic.select(&mut view)
            };
            if let Some(s) = pick {
                shard.selector.observe_selection(s);
            }
            return pick;
        }

        // Stage 1, scatter: every shard shortlists from its own index.
        // Each shard writes only its own scratch, so the pool fan-out
        // cannot reorder anything.
        let problem = inp.task.problem;
        let admit = inp.admit;
        let pool = cas_sim::pool::global();
        if self.shards.len() > 1 && pool.workers() > 1 {
            pool.scope(|scope| {
                for shard in self.shards.iter_mut() {
                    scope.spawn(move || shard.stage1(problem, admit, true));
                }
            });
        } else {
            for shard in self.shards.iter_mut() {
                shard.stage1(problem, admit, true);
            }
        }

        // Merge by stage-1 score (ties by global id), truncated to the
        // widest shard's width: with balanced shards this behaves like
        // one shard-wide selector of that width. Exhaustive selectors
        // keep the whole union — the every-solver loop must stay exact.
        self.merged.clear();
        self.candidates.clear();
        if self.exhaustive {
            // Per-shard shortlists are ascending-local, shards ascending
            // blocks: concatenation is already ascending global id.
            for shard in &self.shards {
                self.candidates.extend(shard.scored.iter().map(|&(_, s)| s));
            }
        } else {
            let widest = self
                .shards
                .iter()
                .map(|s| s.scored.len())
                .max()
                .unwrap_or(0);
            for shard in &self.shards {
                self.merged.extend_from_slice(&shard.scored);
            }
            if self.merged.len() > widest && widest > 0 {
                // Keep the `widest` best by (score, id): a partial select
                // beats sorting the whole S×k merge, and the kept *set*
                // is unique (keys are distinct pairs), so this is
                // bit-identical to sort-then-truncate.
                self.merged.select_nth_unstable(widest - 1);
                self.merged.truncate(widest);
            }
            self.candidates.extend(self.merged.iter().map(|&(_, s)| s));
            self.candidates.sort_unstable();
        }

        // Stage 2, gather: the heuristic runs over the federation through
        // the routed what-if backend.
        let pick = {
            let mut backend = FederatedWhatIf {
                map: &self.map,
                shards: &mut self.shards,
            };
            let mut view = SchedView::new(
                inp.now,
                inp.task,
                self.candidates.clone(),
                inp.costs,
                inp.reports,
                &mut backend,
                tie_rng,
            )
            .with_server_mem(inp.server_mem)
            .with_memo(&mut self.memo);
            heuristic.select(&mut view)
        };
        if let Some(s) = pick {
            let owner = self.map.owner(s);
            let local = self.map.to_local(owner, s);
            self.shards[owner].selector.observe_selection(local);
        }
        pick
    }

    /// A what-if query outside a decision (the engine records the
    /// commit-time prediction of the winning server).
    pub fn predict(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction> {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner].htm.predict(now, local, task)
    }

    /// Routes a commit to the owning shard: HTM trace mutation plus
    /// index re-rank, both `O(shard)` — farm size does not appear.
    pub fn on_commit(&mut self, now: SimTime, server: ServerId, task: &TaskInstance, work: f64) {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        let shard = &mut self.shards[owner];
        shard.htm.commit(now, local, task);
        shard.index.on_commit(local, work);
    }

    /// Routes a retract (placement undone before running) to the owning
    /// shard.
    pub fn on_retract(&mut self, now: SimTime, server: ServerId, task: TaskId, work: f64) {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        let shard = &mut self.shards[owner];
        shard.htm.retract(now, task);
        shard.index.on_retract(local, work);
    }

    /// Routes a completion to the owning shard: index decrement, HTM
    /// synchronisation (per the sync policy) and the selector's stretch
    /// feedback (`observed` vs `predicted` **flow** — durations since
    /// arrival, seconds, so the relative tolerance is age-independent).
    pub fn on_complete(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: TaskId,
        work: f64,
        observed: f64,
        predicted: f64,
    ) {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        let shard = &mut self.shards[owner];
        shard.index.on_complete(local, work);
        shard.htm.observe_completion(now, task);
        shard.selector.observe_outcome(observed, predicted);
    }

    /// Simulated completion dates of every committed task, across all
    /// shards (each task is committed in exactly one).
    pub fn simulated_completions(&self) -> HashMap<TaskId, SimTime> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            out.extend(shard.htm.simulated_completions());
        }
        out
    }
}

/// The [`WhatIf`] backend over a federation: queries speak global ids
/// and are routed to the owning shard; batched queries dispatch one
/// `predict_all` per shard run, fanned over the pool when it pays, with
/// every prediction landing in its candidate's slot.
struct FederatedWhatIf<'a> {
    map: &'a ShardMap,
    shards: &'a mut [ShardEngine],
}

impl WhatIf for FederatedWhatIf<'_> {
    fn predict(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: &TaskInstance,
    ) -> Option<Prediction> {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner].htm.predict(now, local, task)
    }

    fn predict_all(
        &mut self,
        now: SimTime,
        task: &TaskInstance,
        candidates: &[ServerId],
    ) -> Vec<Option<Prediction>> {
        let mut results: Vec<Option<Prediction>> = vec![None; candidates.len()];
        // Split the candidate list into runs of consecutive same-owner
        // entries. The router emits candidates in ascending global id, so
        // there is exactly one run per shard touched; any other order
        // (a wrapper heuristic's widened list) still groups correctly,
        // just into more runs.
        let mut runs: Vec<(usize, usize, usize)> = Vec::new(); // (owner, from, to)
        let mut i = 0;
        while i < candidates.len() {
            let owner = self.map.owner(candidates[i]);
            let mut j = i + 1;
            while j < candidates.len() && self.map.owner(candidates[j]) == owner {
                j += 1;
            }
            runs.push((owner, i, j));
            i = j;
        }
        let pool = cas_sim::pool::global();
        let ascending_owners = runs.windows(2).all(|w| w[0].0 < w[1].0);
        if runs.len() > 1 && pool.workers() > 1 && ascending_owners {
            // Fan one batch per shard over the pool. Owners ascend, so
            // shards and result slots split into disjoint `&mut` pieces;
            // each prediction lands in its candidate's slot and the
            // reduction is the (already-ordered) results vector itself.
            let mut jobs: Vec<BatchJob<'_>> = Vec::with_capacity(runs.len());
            let mut shards_rest: &mut [ShardEngine] = self.shards;
            let mut shards_off = 0usize;
            let mut results_rest: &mut [Option<Prediction>] = &mut results;
            let mut results_off = 0usize;
            for &(owner, from, to) in &runs {
                let (_, tail) = shards_rest.split_at_mut(owner - shards_off);
                let (shard, tail) = tail.split_first_mut().expect("owner in range");
                shards_rest = tail;
                shards_off = owner + 1;
                let (_, tail) = results_rest.split_at_mut(from - results_off);
                let (out, tail) = tail.split_at_mut(to - from);
                results_rest = tail;
                results_off = to;
                let locals: Vec<ServerId> = candidates[from..to]
                    .iter()
                    .map(|&s| self.map.to_local(owner, s))
                    .collect();
                jobs.push((shard, locals, out));
            }
            pool.scope(|scope| {
                for (shard, locals, out) in jobs {
                    scope.spawn(move || {
                        let preds = shard.htm.predict_all(now, task, &locals);
                        for (slot, p) in out.iter_mut().zip(preds) {
                            *slot = p;
                        }
                    });
                }
            });
        } else {
            let mut locals: Vec<ServerId> = Vec::new();
            for &(owner, from, to) in &runs {
                let shard = &mut self.shards[owner];
                if to - from <= SMALL_RUN_MAX {
                    // Short run: per-candidate queries. `predict` is pure
                    // O(drain) — no per-call slot map over the shard's
                    // state table — and bit-identical to the batch path
                    // (both run the same cached speculative drain).
                    for (slot, &s) in results[from..to].iter_mut().zip(&candidates[from..to]) {
                        let local = self.map.to_local(owner, s);
                        *slot = shard.htm.predict(now, local, task);
                    }
                } else {
                    locals.clear();
                    locals.extend(
                        candidates[from..to]
                            .iter()
                            .map(|&s| self.map.to_local(owner, s)),
                    );
                    let preds = shard.htm.predict_all(now, task, &locals);
                    for (slot, p) in results[from..to].iter_mut().zip(preds) {
                        *slot = p;
                    }
                }
            }
        }
        results
    }

    fn resident_estimate(&mut self, now: SimTime, server: ServerId) -> f64 {
        let owner = self.map.owner(server);
        let local = self.map.to_local(owner, server);
        self.shards[owner].htm.resident_estimate(now, local)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cas_core::heuristics::HeuristicKind;
    use cas_platform::PhaseCosts;
    use cas_sim::StreamKind;
    use proptest::prelude::*;

    const N_SERVERS: usize = 6;
    const N_PROBLEMS: usize = 2;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn build_table(costs: &[PhaseCosts], solvable: &[bool]) -> CostTable {
        let mut table = CostTable::new(N_SERVERS);
        for p in 0..N_PROBLEMS {
            let row = (0..N_SERVERS)
                .map(|s| {
                    let k = p * N_SERVERS + s;
                    (s == 0 || solvable[k]).then_some(costs[k])
                })
                .collect();
            table.add_problem(
                cas_platform::Problem::new(format!("p{p}"), 0.1, 0.1, 64.0),
                row,
            );
        }
        table
    }

    /// The single-agent decision loop, replicated inline: one farm-wide
    /// HTM, one index, one selector — the pre-federation `engine` path,
    /// kept here as the executable specification the router is diffed
    /// against.
    struct Reference {
        htm: Htm,
        index: StaticIndex,
        selector: Box<dyn CandidateSelector>,
        memo: DecisionMemo,
    }

    impl Reference {
        fn new(costs: &CostTable, selector: SelectorKind, sync: SyncPolicy) -> Self {
            Reference {
                htm: Htm::new(costs.clone(), sync),
                index: StaticIndex::new(costs),
                selector: selector.build(),
                memo: DecisionMemo::new(),
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn decide(
            &mut self,
            now: SimTime,
            task: TaskInstance,
            costs: &CostTable,
            reports: &[LoadReport],
            server_mem: &[f64],
            admit: &(dyn Fn(ServerId) -> bool + Sync),
            heuristic: &mut dyn Heuristic,
            tie_rng: &mut RngStream,
        ) -> Option<(ServerId, Prediction)> {
            let mut candidates = Vec::new();
            self.selector.shortlist(
                SelectorInput {
                    problem: task.problem,
                    costs,
                    index: &self.index,
                },
                &|s| admit(s),
                &mut candidates,
            );
            let picked = {
                let mut view = SchedView::new(
                    now,
                    task,
                    candidates,
                    costs,
                    reports,
                    &mut self.htm,
                    tie_rng,
                )
                .with_server_mem(server_mem)
                .with_memo(&mut self.memo);
                let pick = heuristic.select(&mut view)?;
                let p = view.predict(pick).cloned().expect("picked is solvable");
                (pick, p)
            };
            self.selector.observe_selection(picked.0);
            Some(picked)
        }
    }

    /// Drives the router decision-by-decision against the inline
    /// single-agent reference over arbitrary interleavings of
    /// decide / commit / retract / complete: picks and winning
    /// predictions must agree **bit for bit**. Holds for one shard under
    /// every selector backend, and for any shard count under the
    /// exhaustive selector (pruning selectors legitimately diverge
    /// across shards: each shard adapts its own width).
    fn run_differential(
        costs: Vec<PhaseCosts>,
        solvable: Vec<bool>,
        n_shards: usize,
        selector: SelectorKind,
        sync: SyncPolicy,
        ops: Vec<(u32, u32, u32, f64, u32)>,
    ) -> Result<(), TestCaseError> {
        let table = build_table(&costs, &solvable);
        let mut reference = Reference::new(&table, selector, sync);
        let mut router = AgentRouter::new(
            &table,
            Some(n_shards),
            selector,
            IndexScoring::default(),
            sync,
        );
        prop_assert_eq!(router.n_shards(), n_shards);
        prop_assert!(router.is_federated());
        let reports: Vec<LoadReport> = (0..N_SERVERS as u32)
            .map(|i| LoadReport::initial(ServerId(i)))
            .collect();
        let server_mem = vec![512.0; N_SERVERS];
        let mut now = 0.0f64;
        let mut next_id = 0u64;
        let mut committed: Vec<(TaskId, ServerId, f64)> = Vec::new();
        for (kind, server, problem, gap, excl) in ops {
            now += gap;
            let when = t(now);
            match kind {
                // Decision rounds.
                0..=5 => {
                    let heuristic = match kind {
                        0 | 3 => HeuristicKind::Hmct,
                        1 | 4 => HeuristicKind::Msf,
                        2 => HeuristicKind::MemHmct,
                        _ => HeuristicKind::Mct,
                    };
                    let task =
                        TaskInstance::new(TaskId(1_000_000 + next_id), ProblemId(problem), when);
                    next_id += 1;
                    let admit = move |s: ServerId| s.0 != excl;
                    let mut rng_a = RngStream::derive(7, StreamKind::TieBreak);
                    let mut rng_b = RngStream::derive(7, StreamKind::TieBreak);
                    let ref_pick = reference.decide(
                        when,
                        task,
                        &table,
                        &reports,
                        &server_mem,
                        &admit,
                        heuristic.build().as_mut(),
                        &mut rng_a,
                    );
                    let routed_pick = {
                        let mut h = heuristic.build();
                        router.decide(
                            DecisionInputs {
                                now: when,
                                task,
                                costs: &table,
                                reports: &reports,
                                server_mem: &server_mem,
                                admit: &admit,
                            },
                            h.as_mut(),
                            &mut rng_b,
                        )
                    };
                    match (&ref_pick, &routed_pick) {
                        (None, None) => {}
                        (Some((s, p)), Some(rs)) => {
                            prop_assert_eq!(s, rs, "{:?} pick diverged", heuristic);
                            let rp = router
                                .predict(when, *rs, &task)
                                .expect("picked is solvable");
                            prop_assert_eq!(p, &rp, "{:?} prediction diverged", heuristic);
                        }
                        _ => prop_assert!(false, "{heuristic:?}: one side failed the task"),
                    }
                }
                // Commits keep both sides in lockstep.
                6 | 7 => {
                    let task = TaskInstance::new(TaskId(next_id), ProblemId(problem), when);
                    next_id += 1;
                    let target = if table.costs(task.problem, ServerId(server)).is_some() {
                        ServerId(server)
                    } else {
                        ServerId(0) // always solvable by construction
                    };
                    let work = table
                        .unloaded_duration(task.problem, target)
                        .expect("target is solvable");
                    reference.htm.commit(when, target, &task);
                    reference.index.on_commit(target, work);
                    router.on_commit(when, target, &task, work);
                    committed.push((task.id, target, work));
                }
                // Retracts undo the most recent commit on both sides.
                8 => {
                    if let Some((id, srv, work)) = committed.pop() {
                        reference.htm.retract(when, id);
                        reference.index.on_retract(srv, work);
                        router.on_retract(when, srv, id, work);
                    }
                }
                // Completions: index decrement + HTM sync + stretch
                // feedback, both sides.
                _ => {
                    if !committed.is_empty() {
                        let (id, srv, work) = committed.remove(0);
                        let observed = now;
                        let predicted = now * 0.9 + 1.0;
                        reference.index.on_complete(srv, work);
                        reference.htm.observe_completion(when, id);
                        reference.selector.observe_outcome(observed, predicted);
                        router.on_complete(when, srv, id, work, observed, predicted);
                    }
                }
            }
        }
        // The models agree at rest too.
        let ref_completions = reference.htm.simulated_completions();
        prop_assert_eq!(ref_completions, router.simulated_completions());
        Ok(())
    }

    prop_compose! {
        fn arb_costs()(i in 0.0f64..3.0, c in 0.1f64..30.0, o in 0.0f64..3.0) -> PhaseCosts {
            PhaseCosts::new(i, c, o)
        }
    }

    fn arb_ops() -> impl Strategy<Value = Vec<(u32, u32, u32, f64, u32)>> {
        proptest::collection::vec(
            // (op kind, server, problem, time gap, excluded server)
            (
                0u32..10,
                0u32..N_SERVERS as u32,
                0u32..N_PROBLEMS as u32,
                0.0f64..15.0,
                0u32..N_SERVERS as u32,
            ),
            1..40,
        )
    }

    proptest! {
        /// `--shards 1` ≡ the unsharded engine, per decision, for every
        /// selector backend (the S = 1 invariant of the module docs).
        #[test]
        fn router_single_shard_is_bitwise_reference(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            selector_pick in 0usize..4,
            force_finish in proptest::bool::ANY,
            ops in arb_ops(),
        ) {
            let selector = [
                SelectorKind::Exhaustive,
                SelectorKind::TopK { k: 2 },
                SelectorKind::TopK { k: 64 },
                SelectorKind::Adaptive { k_min: 1, k_max: 3 },
            ][selector_pick];
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_differential(costs, solvable, 1, selector, sync, ops)?;
        }

        /// Under the exhaustive selector the scatter–merge–gather router
        /// is bit-identical to the single agent at **any** shard count:
        /// the union of per-shard every-solver loops is the every-solver
        /// loop.
        #[test]
        fn router_exhaustive_any_shard_count_is_bitwise_reference(
            costs in proptest::collection::vec(arb_costs(), N_SERVERS * N_PROBLEMS),
            solvable in proptest::collection::vec(proptest::bool::ANY, N_SERVERS * N_PROBLEMS),
            n_shards in 2usize..N_SERVERS + 1,
            force_finish in proptest::bool::ANY,
            ops in arb_ops(),
        ) {
            let sync = if force_finish { SyncPolicy::ForceFinish } else { SyncPolicy::None };
            run_differential(costs, solvable, n_shards, SelectorKind::Exhaustive, sync, ops)?;
        }
    }
}

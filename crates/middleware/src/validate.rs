//! Model validation (Table 1).
//!
//! The paper validates the shared-resource model by comparing real and
//! simulated completion dates of small matmul metatasks on a time-shared
//! server, reporting per-task absolute error and "percentage of error"
//! (100 · |Δ| / real task duration), with a mean below 3 %.
//!
//! Here the "real" completion date comes from the noisy ground-truth
//! simulator and the "simulated" one is the HTM's commit-time prediction —
//! the same quantities the paper tabulates, with the testbed replaced per
//! DESIGN.md §2.

use crate::config::ExperimentConfig;
use crate::engine::run_experiment;
use cas_metrics::TaskRecord;
use cas_platform::{CostTable, ServerSpec, TaskInstance};

/// One row of a Table-1-style validation report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// The task (paper column 1).
    pub task: u64,
    /// Arrival date (column 2).
    pub arrival: f64,
    /// Real (ground-truth) completion date (column 4).
    pub real: f64,
    /// HTM-simulated completion date (column 5).
    pub simulated: f64,
    /// `simulated − real` … the paper tabulates `real − simulated`; sign
    /// convention follows the paper (column 6).
    pub difference: f64,
    /// `100 · |difference| / (real − arrival)` (column 7).
    pub error_pct: f64,
}

/// Runs one experiment and extracts the validation rows (completed tasks
/// with predictions only), in completion order.
pub fn validation_report(
    cfg: ExperimentConfig,
    costs: CostTable,
    servers: Vec<ServerSpec>,
    tasks: Vec<TaskInstance>,
) -> Vec<ValidationRow> {
    let records = run_experiment(cfg, costs, servers, tasks);
    rows_from_records(&records)
}

/// Extracts validation rows from existing records.
pub fn rows_from_records(records: &[TaskRecord]) -> Vec<ValidationRow> {
    let mut rows: Vec<ValidationRow> = records
        .iter()
        .filter_map(|r| {
            let real = r.finished()?.as_secs();
            let simulated = r.predicted_completion?.as_secs();
            let duration = real - r.arrival.as_secs();
            if duration <= 0.0 {
                return None;
            }
            Some(ValidationRow {
                task: r.task.0,
                arrival: r.arrival.as_secs(),
                real,
                simulated,
                difference: real - simulated,
                error_pct: 100.0 * (real - simulated).abs() / duration,
            })
        })
        .collect();
    rows.sort_by(|a, b| a.real.partial_cmp(&b.real).expect("finite times"));
    rows
}

/// Mean percentage error over a report — the paper's headline "< 3 %".
pub fn mean_error_pct(rows: &[ValidationRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.error_pct).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_core::heuristics::HeuristicKind;
    use cas_platform::{PhaseCosts, Problem, ProblemId, TaskId};
    use cas_sim::SimTime;

    fn one_server() -> (CostTable, Vec<ServerSpec>) {
        let mut costs = CostTable::new(1);
        costs.add_problem(
            Problem::new("mm", 5.0, 2.0, 0.0),
            vec![Some(PhaseCosts::new(2.0, 40.0, 1.0))],
        );
        (costs, vec![ServerSpec::new("solo", 500.0, 2048.0, 1024.0)])
    }

    fn tasks(arrivals: &[f64]) -> Vec<TaskInstance> {
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| TaskInstance::new(TaskId(i as u64), ProblemId(0), SimTime::from_secs(a)))
            .collect()
    }

    #[test]
    fn ideal_mode_has_zero_error() {
        let (costs, servers) = one_server();
        let cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1);
        let rows = validation_report(cfg, costs, servers, tasks(&[0.0, 10.0, 20.0]));
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.error_pct < 1e-6, "{r:?}");
        }
        assert!(mean_error_pct(&rows) < 1e-6);
    }

    #[test]
    fn noisy_mode_has_small_nonzero_error() {
        let (costs, servers) = one_server();
        let mut cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 5);
        cfg.memory = cas_platform::MemoryModel::disabled();
        let rows = validation_report(cfg, costs, servers, tasks(&[0.0, 15.0, 33.0, 50.0]));
        assert_eq!(rows.len(), 4);
        let mean = mean_error_pct(&rows);
        assert!(mean > 0.0, "noise must produce error");
        assert!(mean < 12.0, "error should stay small, got {mean}");
    }

    #[test]
    fn rows_sorted_by_completion() {
        let (costs, servers) = one_server();
        let cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1);
        let rows = validation_report(cfg, costs, servers, tasks(&[0.0, 1.0, 2.0]));
        for w in rows.windows(2) {
            assert!(w[0].real <= w[1].real);
        }
    }

    #[test]
    fn empty_records_mean_is_zero() {
        assert_eq!(mean_error_pct(&[]), 0.0);
    }
}

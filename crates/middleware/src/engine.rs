//! The grid world: clients, agent and servers in one discrete-event model.
//!
//! Event flow for one task (§2.1's protocol, compressed to what matters for
//! scheduling):
//!
//! ```text
//! Submit ──agent latency──► Schedule ──reserve memory──► input transfer
//!     (reject? retry/fail)      │
//!                               ▼
//!                     input done → compute (fair-shared CPU)
//!                               ▼
//!                    compute done → output transfer → task complete
//! ```
//!
//! Shared-resource completions use the generation-stamp pattern: every
//! membership or capacity change on a fair-share resource invalidates the
//! previously scheduled completion event, and a fresh one is scheduled from
//! the resource's new state.
//!
//! The world is written against the kernel's `EventQueue` trait (via the
//! backend-erased `Scheduler`), and [`run_experiment`] drives it on the
//! default [`AdaptiveQueue`](cas_sim::AdaptiveQueue) — small paper runs
//! stay on the binary heap, 1k-server campaigns migrate to the calendar
//! queue automatically. Per-task hot state avoids hashing entirely:
//! in-flight records live in a generational [`Arena`] reached through a
//! dense task-indexed key table, and each decision's prediction memo
//! reuses one run-wide [`DecisionMemo`].
//!
//! Scheduling decisions run the **two-stage pipeline** behind the shard
//! federation's [`AgentRouter`] (see [`crate::shard`]): stage 1, each
//! shard's configured `CandidateSelector` proposes a shortlist from its
//! incrementally maintained `StaticIndex` (kept current by the
//! commit/complete hooks in this file — no per-arrival platform rescan);
//! stage 2, the heuristic runs its batched HTM what-if queries on the
//! merged shortlist only, routed to the owning shards. The default
//! configuration is a single agent owning the whole farm (the paper's
//! model, and the executable spec the federation is differentially
//! tested against); `ExperimentConfig::shards` partitions the farm so
//! no decision structure scales with its size. The exhaustive selector
//! reproduces the paper's every-solver loop bit for bit in both modes.

use crate::config::{ExperimentConfig, FaultTolerance};
use crate::event::GridEvent;
use crate::shard::{AgentRouter, DecisionInputs};
use cas_core::heuristics::Heuristic;
use cas_core::Htm;
use cas_metrics::{DropReason, TaskOutcome, TaskRecord};
use cas_platform::{
    AdmitOutcome, Arena, ArenaKey, CostTable, LoadAverage, LoadReport, Phase, PhaseCosts, ServerId,
    ServerRuntime, ServerSpec, TaskId, TaskInstance,
};
use cas_sim::dist::{LogNormalNoise, Sample};
use cas_sim::{prof, RngStream, Scheduler, SimTime, Simulation, StreamKind, World};
use cas_workload::ChurnProcess;
use std::collections::VecDeque;

/// Tolerance when matching a completion event's time against the
/// resource's recomputed completion time.
const COMPLETION_EPS: f64 = 1e-6;

/// Lifecycle counters of one run: how often the farm changed shape and
/// what the scheduler did about it. The cheap observability surface of
/// the fault-injection subsystem, next to
/// [`GridWorld::report_events`] and `Simulation::peak_pending`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChurnStats {
    /// Servers that crashed (in-flight work lost).
    pub crashes: u64,
    /// Servers that came back after a crash.
    pub joins: u64,
    /// Servers that left gracefully (drained, no retraction).
    pub leaves: u64,
    /// In-flight placements undone by crashes: one HTM retract plus one
    /// index-ledger payback each.
    pub retractions: u64,
    /// Tasks re-entered into the decision pipeline — after a crash
    /// retraction, or after finding no live solver — with the
    /// re-dispatch backoff applied.
    pub redispatches: u64,
    /// Tasks dropped with a reason code (re-dispatch budget exhausted,
    /// or no live solver left).
    pub drops: u64,
    /// Federation re-partitions triggered by the live-count band.
    pub rebalances: u64,
    /// Brand-new servers admitted mid-campaign (provision schedule).
    pub provisions: u64,
}

/// Observability counters of the admission backpressure gate: how much
/// the bounded buffer absorbed and how much it shed. All-zero when the
/// gate is off (`ExperimentConfig::admission_capacity == 0`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Buffer entries: tasks that waited behind the gate at least once
    /// (a crash-retracted task re-entering counts again).
    pub buffered: u64,
    /// Buffer exits into the decision pipeline (fair dequeue).
    pub dequeued: u64,
    /// Tasks shed because their admission deadline expired in the
    /// buffer.
    pub shed_deadline: u64,
    /// Tasks shed on arrival (or re-entry) because the buffer itself
    /// was full.
    pub shed_overflow: u64,
    /// Crash-retracted tasks that re-entered through the buffer instead
    /// of the re-dispatch backoff.
    pub reentries: u64,
    /// High-water mark of the buffer occupancy.
    pub peak_buffered: usize,
    /// High-water mark of concurrently admitted tasks (≤ capacity).
    pub peak_admitted: usize,
}

/// One task waiting behind the admission gate. `attempt`/`excluded`
/// are the Schedule arguments to replay on dequeue, so a re-buffered
/// crash victim keeps its attempt count and exclusion.
#[derive(Debug, Clone)]
struct BufferedTask {
    idx: usize,
    attempt: u32,
    excluded: Vec<ServerId>,
    enqueued: SimTime,
}

/// The bounded admission buffer: per-user-class FIFO queues drained
/// round-robin (so one flooding class cannot starve the others), a
/// concurrency gate of `capacity` tasks, and a per-task deadline after
/// which a buffered task is shed with
/// [`DropReason::AdmissionDeadline`]. Built at `init` when
/// `ExperimentConfig::admission_capacity > 0`; `None` otherwise, in
/// which case submissions take the exact pre-backpressure path.
struct AdmissionState {
    capacity: usize,
    buffer_cap: usize,
    in_admission: usize,
    buffered_total: usize,
    /// Per-class FIFO queues, sorted by class id so iteration order is
    /// deterministic in the workload alone.
    queues: Vec<(u32, VecDeque<BufferedTask>)>,
    /// Round-robin cursor of the fair dequeue: index into `queues` of
    /// the class to serve next.
    rr: usize,
    /// Whether task `idx` currently waits in the buffer.
    buffered: Vec<bool>,
    /// Admission generation per task, bumped on every buffer exit: a
    /// deadline event armed for an earlier stay cannot shed a task
    /// that was dequeued and re-buffered since.
    gen: Vec<u32>,
    /// Total buffered seconds per task (the SLO "buffered time").
    waits: Vec<f64>,
    stats: AdmissionStats,
}

impl AdmissionState {
    fn new(cfg: &ExperimentConfig, users: &[u32]) -> Self {
        let mut classes: Vec<u32> = users.to_vec();
        classes.sort_unstable();
        classes.dedup();
        AdmissionState {
            capacity: cfg.admission_capacity,
            buffer_cap: cfg.admission_buffer,
            in_admission: 0,
            buffered_total: 0,
            queues: classes.into_iter().map(|c| (c, VecDeque::new())).collect(),
            rr: 0,
            buffered: vec![false; users.len()],
            gen: vec![0; users.len()],
            waits: vec![0.0; users.len()],
            stats: AdmissionStats::default(),
        }
    }

    fn queue_of(&mut self, class: u32) -> &mut VecDeque<BufferedTask> {
        let i = self
            .queues
            .binary_search_by_key(&class, |(c, _)| *c)
            .expect("every task's class is registered");
        &mut self.queues[i].1
    }

    fn enqueue(&mut self, class: u32, entry: BufferedTask) {
        self.buffered[entry.idx] = true;
        self.buffered_total += 1;
        self.stats.buffered += 1;
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered_total);
        self.queue_of(class).push_back(entry);
    }

    /// Fair dequeue: the oldest waiting task of the next non-empty
    /// class, round-robin starting after the class served last.
    fn dequeue(&mut self, now: SimTime) -> Option<BufferedTask> {
        if self.buffered_total == 0 {
            return None;
        }
        let n = self.queues.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            if let Some(entry) = self.queues[i].1.pop_front() {
                self.rr = (i + 1) % n;
                self.buffered_total -= 1;
                self.buffered[entry.idx] = false;
                self.gen[entry.idx] += 1;
                self.waits[entry.idx] += now.as_secs() - entry.enqueued.as_secs();
                self.stats.dequeued += 1;
                return Some(entry);
            }
        }
        None
    }

    /// Removes a deadline-expired task from its class queue (the caller
    /// has already checked `buffered` and the generation stamp).
    fn expire(&mut self, class: u32, idx: usize, now: SimTime) {
        let q = self.queue_of(class);
        let pos = q
            .iter()
            .position(|e| e.idx == idx)
            .expect("buffered task is queued under its class");
        let entry = q.remove(pos).expect("position is in bounds");
        self.buffered_total -= 1;
        self.buffered[idx] = false;
        self.gen[idx] += 1;
        self.waits[idx] += now.as_secs() - entry.enqueued.as_secs();
        self.stats.shed_deadline += 1;
    }
}

/// A scheduled mid-campaign server admission: at `at`, a brand-new
/// server with `spec` joins the farm, solving each problem at the
/// pre-measured `column` costs (one entry per problem, `None` =
/// unsolvable there — exactly a column of the cost table). Declared
/// before the run ([`GridWorld::with_provisions`]) so the grown farm is
/// a deterministic function of the schedule, never of event timing.
#[derive(Debug, Clone)]
pub struct Provision {
    /// Admission time.
    pub at: SimTime,
    /// The joining server's machine description.
    pub spec: ServerSpec,
    /// Its cost-table column, one entry per problem.
    pub column: Vec<Option<PhaseCosts>>,
}

/// A task in flight on a server.
#[derive(Debug, Clone, Copy)]
struct Flight {
    server: ServerId,
    costs: PhaseCosts,
    /// Which phase the task is currently in (needed to interpret shared
    /// client-link completions, which carry no phase information).
    phase: Phase,
    /// Predicted seconds of work the commit added to the static index's
    /// remaining-work ledger; the completion hook must decrement exactly
    /// this amount.
    work: f64,
}

/// The complete simulated system.
pub struct GridWorld {
    cfg: ExperimentConfig,
    costs: CostTable,
    tasks: Vec<TaskInstance>,
    servers: Vec<ServerRuntime>,
    monitors: Vec<LoadAverage>,
    reports: Vec<LoadReport>,
    /// The agent's entire decision stack: per-shard HTMs, static indices
    /// and stage-1 selectors behind the deterministic router (a single
    /// shard owning the whole farm by default — the paper's agent).
    agent: AgentRouter,
    heuristic: Box<dyn Heuristic>,
    /// Per-server admission limits (RAM + swap, MB), cached once at
    /// build: specs are immutable, and collecting this per decision put
    /// an O(n) scan on every arrival.
    server_mem: Vec<f64>,
    tie_rng: RngStream,
    cpu_noise: Vec<RngStream>,
    net_noise: Vec<RngStream>,
    noise_dist: LogNormalNoise,
    /// In-flight per-task state, arena-backed: records live contiguously,
    /// slots recycle as tasks complete, and the per-event lookup is a
    /// dense-index read (`flight_keys[task]` → arena slot) instead of a
    /// hash. Task ids are dense submission indices, so the key table is a
    /// plain `Vec` aligned with `records`.
    flights: Arena<Flight>,
    flight_keys: Vec<Option<ArenaKey<Flight>>>,
    /// The single client-side link all transfers share when
    /// `cfg.shared_client_link` is on; `None` in per-server-link mode.
    client_link: Option<cas_platform::FairShareResource<TaskId>>,
    records: Vec<TaskRecord>,
    /// Tasks not yet terminal (completed or failed); recurring events stop
    /// re-arming when this reaches zero so the simulation drains.
    remaining: usize,
    /// Servers the agent has learned are collapsed (a refusal response
    /// carries the flag).
    agent_known_dead: Vec<bool>,
    /// Liveness under churn: `false` while a server is crashed or has
    /// left. Dead servers are excluded from every decision's admit
    /// filter and dropped from the stage-1 rankings
    /// (`AgentRouter::set_available`); with churn disabled the vector
    /// stays all-true and the run is bit-identical to a frozen farm.
    live: Vec<bool>,
    /// Tasks currently in flight per server — the list a crash walks to
    /// retract the victim's placements. Maintained by the commit,
    /// completion and retraction paths.
    inflight: Vec<Vec<TaskId>>,
    /// Servers scheduled to join mid-campaign, in declaration order
    /// (admission events index into this).
    provisions: Vec<Provision>,
    /// The instantiated fault schedule (`None` when `cfg.mtbf` is
    /// infinite: no churn events, no churn RNG streams).
    churn: Option<ChurnProcess>,
    churn_stats: ChurnStats,
    /// Live-count band `(lo, hi)` per shard: drifting outside it
    /// triggers an online re-partition (federated router only).
    band: (usize, usize),
    /// Kernel events spent on load reports so far (per-server events in
    /// the default mode, per-shard events in aggregated mode) — the
    /// counter behind the O(n) → O(S) queue-pressure claim.
    report_events: u64,
    /// Per-task user classes, aligned with `tasks` (all-zero unless a
    /// trace workload attached real ones via
    /// [`GridWorld::with_users`]). Feed the admission gate's fair
    /// dequeue and the per-class SLO report.
    users: Vec<u32>,
    /// The admission backpressure gate (`None` when
    /// `cfg.admission_capacity == 0`: submissions take the exact
    /// pre-backpressure path). Built once at `init`, after the
    /// builders have had their say on `users`.
    admission: Option<AdmissionState>,
}

impl GridWorld {
    /// Builds the world. `tasks` must be sorted by arrival (metatask
    /// generators produce them that way).
    pub fn new(
        cfg: ExperimentConfig,
        costs: CostTable,
        server_specs: Vec<ServerSpec>,
        tasks: Vec<TaskInstance>,
    ) -> Self {
        assert_eq!(
            costs.n_servers(),
            server_specs.len(),
            "cost table and server list must agree"
        );
        assert!(
            tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "tasks must be sorted by arrival"
        );
        let n = server_specs.len();
        let churn = cfg.churn_model().process(n);
        let heuristic = cfg.heuristic.build();
        let mut agent = AgentRouter::new(
            &costs,
            cfg.shards.resolve(n),
            cfg.selector,
            cfg.index_scoring,
            cfg.sync,
        )
        .with_rankings(cfg.rankings)
        .with_skyline(cfg.skyline)
        .with_stage2(cfg.stage2)
        // The run binds one heuristic for its whole lifetime, so the
        // drain depth is a run-level property: a policy that never reads
        // perturbations lets fast-mode drains truncate at the probe's
        // completion.
        .with_completion_only(!heuristic.needs_perturbations())
        // History replay is what populates rebuilt blocks on a
        // rebalance, and only a churning federation ever rebalances.
        .with_history(churn.is_some() && cfg.shards.resolve(n).is_some());
        if let Some(group_size) = cfg.shards.group_size() {
            agent = agent.with_group_size(group_size);
        }
        // Per-shard live-count band from the initial shape: merge below
        // half the initial mean block, split above twice it.
        let mean_block = (n / agent.n_shards().max(1)).max(1);
        let band = ((mean_block / 2).max(1), (mean_block * 2).max(2));
        let records = tasks
            .iter()
            .map(|t| TaskRecord {
                task: t.id,
                problem: t.problem,
                arrival: t.arrival,
                server: None,
                unloaded_duration: 0.0,
                predicted_completion: None,
                commit_prediction: None,
                outcome: TaskOutcome::InFlight,
                attempts: 0,
            })
            .collect();
        GridWorld {
            remaining: tasks.len(),
            flight_keys: vec![None; tasks.len()],
            agent,
            heuristic,
            tie_rng: RngStream::derive(cfg.seed, StreamKind::TieBreak),
            cpu_noise: (0..n as u32)
                .map(|i| RngStream::derive(cfg.seed, StreamKind::CpuNoise(i)))
                .collect(),
            net_noise: (0..n as u32)
                .map(|i| RngStream::derive(cfg.seed, StreamKind::NetNoise(i)))
                .collect(),
            noise_dist: LogNormalNoise::new(cfg.noise_sigma),
            server_mem: server_specs
                .iter()
                .map(|spec| spec.total_mem_mb())
                .collect(),
            servers: server_specs
                .into_iter()
                .map(|spec| ServerRuntime::new(spec, cfg.memory))
                .collect(),
            monitors: (0..n).map(|_| LoadAverage::new(cfg.load_tau)).collect(),
            reports: (0..n as u32)
                .map(|i| LoadReport::initial(ServerId(i)))
                .collect(),
            flights: Arena::with_capacity(64),
            client_link: if cfg.shared_client_link {
                Some(cas_platform::FairShareResource::new(1.0))
            } else {
                None
            },
            records,
            agent_known_dead: vec![false; n],
            live: vec![true; n],
            inflight: vec![Vec::new(); n],
            provisions: Vec::new(),
            churn,
            churn_stats: ChurnStats::default(),
            band,
            report_events: 0,
            users: vec![0; tasks.len()],
            admission: None,
            cfg,
            costs,
            tasks,
        }
    }

    /// Declares servers that join the farm mid-campaign (sorted or not —
    /// each is scheduled at its own `at`). Every column must cover the
    /// cost table's problems; the asserts fire at admission time.
    pub fn with_provisions(mut self, provisions: Vec<Provision>) -> Self {
        self.provisions = provisions;
        self
    }

    /// Attaches per-task user classes (trace workloads): `users[i]` is
    /// the class of `tasks[i]`. The admission gate dequeues fairly
    /// across classes and the SLO report splits by them. Defaults to a
    /// single class (all zero).
    pub fn with_users(mut self, users: Vec<u32>) -> Self {
        assert_eq!(users.len(), self.tasks.len(), "one user class per task");
        self.users = users;
        self
    }

    /// The agent's HTM (inspection, Gantt extraction). Under a shard
    /// federation this is shard 0's HTM — the whole farm in the default
    /// single-agent configuration; see [`GridWorld::agent`] otherwise.
    pub fn htm(&self) -> &Htm {
        self.agent.htm()
    }

    /// Mutable HTM access (to enable Gantt recording before a run).
    pub fn htm_mut(&mut self) -> &mut Htm {
        self.agent.htm_mut()
    }

    /// The federated agent: the full decision stack.
    pub fn agent(&self) -> &AgentRouter {
        &self.agent
    }

    /// Mutable agent access (tests force the stage-2 parallel scatter on
    /// or off through it).
    pub fn agent_mut(&mut self) -> &mut AgentRouter {
        &mut self.agent
    }

    /// The per-task records accumulated so far.
    pub fn records(&self) -> &[TaskRecord] {
        &self.records
    }

    /// Consumes the world, returning the per-task records without a
    /// copy (for benches that keep whole-campaign records around, e.g.
    /// the skyline-on/off equality arms at 10⁶ tasks).
    pub fn into_records(self) -> Vec<TaskRecord> {
        self.records
    }

    /// One server's runtime state.
    pub fn server(&self, id: ServerId) -> &ServerRuntime {
        &self.servers[id.index()]
    }

    /// Number of tasks not yet terminal.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Kernel events spent on periodic load reports so far: one per
    /// server per period in the default mode, one per **shard** per
    /// period with `ExperimentConfig::aggregated_reports` on.
    pub fn report_events(&self) -> u64 {
        self.report_events
    }

    /// Lifecycle counters: crashes, joins, leaves, retractions,
    /// re-dispatches, drops and rebalances so far.
    pub fn churn_stats(&self) -> ChurnStats {
        self.churn_stats
    }

    /// Number of currently live servers.
    pub fn live_servers(&self) -> usize {
        self.live.iter().filter(|&&up| up).count()
    }

    /// Per-task user classes (all-zero unless a trace attached real
    /// ones).
    pub fn users(&self) -> &[u32] {
        &self.users
    }

    /// Admission backpressure counters (all-zero when the gate is off).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.as_ref().map(|a| a.stats).unwrap_or_default()
    }

    /// Per-task total buffered seconds behind the admission gate —
    /// empty when the gate is off (`cas_metrics::per_class_slo` reads
    /// an empty slice as all-zero waits).
    pub fn admission_waits(&self) -> &[f64] {
        self.admission.as_ref().map_or(&[], |a| a.waits.as_slice())
    }

    fn resource(&self, server: ServerId, phase: Phase) -> &cas_platform::FairShareResource<TaskId> {
        let s = &self.servers[server.index()];
        match phase {
            Phase::Input => &s.link_in,
            Phase::Compute => &s.cpu,
            Phase::Output => &s.link_out,
        }
    }

    fn resource_mut(
        &mut self,
        server: ServerId,
        phase: Phase,
    ) -> &mut cas_platform::FairShareResource<TaskId> {
        let s = &mut self.servers[server.index()];
        match phase {
            Phase::Input => &mut s.link_in,
            Phase::Compute => &mut s.cpu,
            Phase::Output => &mut s.link_out,
        }
    }

    /// (Re)schedules the completion event for a server resource from its
    /// current state.
    fn resched(&mut self, server: ServerId, phase: Phase, sched: &mut Scheduler<'_, GridEvent>) {
        let now = sched.now();
        let res = self.resource(server, phase);
        if let Some((_, when)) = res.next_completion(now) {
            let gen = res.generation();
            sched.at(when.max(now), GridEvent::PhaseDone { server, phase, gen });
        }
    }

    /// (Re)schedules the completion event for the shared client link.
    fn resched_client_link(&mut self, sched: &mut Scheduler<'_, GridEvent>) {
        let now = sched.now();
        let link = self.client_link.as_ref().expect("shared link enabled");
        if let Some((_, when)) = link.next_completion(now) {
            let gen = link.generation();
            sched.at(when.max(now), GridEvent::ClientLinkDone { gen });
        }
    }

    /// The in-flight record of `task` (task ids are dense, so this is an
    /// indexed read through the arena key table).
    fn flight(&self, task: TaskId) -> &Flight {
        let key = self.flight_keys[task.index()].expect("flight exists");
        self.flights.get(key).expect("flight key is live")
    }

    fn flight_mut(&mut self, task: TaskId) -> &mut Flight {
        let key = self.flight_keys[task.index()].expect("flight exists");
        self.flights.get_mut(key).expect("flight key is live")
    }

    /// A task finished its input transfer: move it onto the CPU.
    fn input_arrived(&mut self, now: SimTime, task: TaskId, sched: &mut Scheduler<'_, GridEvent>) {
        let flight = self.flight_mut(task);
        debug_assert_eq!(flight.phase, Phase::Input);
        flight.phase = Phase::Compute;
        let (server, compute) = (flight.server, flight.costs.compute);
        self.touch_monitor(server, now);
        self.servers[server.index()].begin_compute(now, task, compute);
        self.resched(server, Phase::Compute, sched);
    }

    /// A task finished its output transfer: it is complete. The
    /// completion routes to the owning shard only — index decrement, HTM
    /// sync and the selector's stretch feedback all stay O(shard).
    ///
    /// The stretch signal compares **flows** (durations since arrival),
    /// not absolute completion dates: a relative tolerance on absolute
    /// sim dates would decay to nothing as the campaign clock grows, and
    /// a task late by 10 s must register the same at t = 100 as at
    /// t = 10,000.
    fn output_arrived(&mut self, now: SimTime, task: TaskId, sched: &mut Scheduler<'_, GridEvent>) {
        if let Some(key) = self.flight_keys[task.index()].take() {
            let flight = self.flights.remove(key).expect("flight key is live");
            self.forget_inflight(flight.server, task);
            let rec = &self.records[task.index()];
            let arrival = rec.arrival.as_secs();
            let predicted_flow = rec
                .commit_prediction
                .map_or(0.0, |p| (p.as_secs() - arrival).max(0.0));
            let observed_flow = now.as_secs() - arrival;
            let _hooks = prof::span(prof::Phase::CommitHooks);
            self.agent.on_complete(
                now,
                flight.server,
                task,
                flight.work,
                observed_flow,
                predicted_flow,
            );
        }
        let rec = self.record_mut(task);
        rec.outcome = TaskOutcome::Completed { finished: now };
        self.remaining -= 1;
        self.release_admission(now, sched);
    }

    /// Integrates the load monitor up to `now` with the run-queue length
    /// that held since the last touch. Must be called *before* changing the
    /// CPU membership.
    fn touch_monitor(&mut self, server: ServerId, now: SimTime) {
        let len = self.servers[server.index()].run_queue_len();
        self.monitors[server.index()].observe(now, len);
    }

    fn record_mut(&mut self, task: TaskId) -> &mut TaskRecord {
        // Task ids are dense indices into the metatask.
        &mut self.records[task.index()]
    }

    /// Drops `task` from `server`'s in-flight list (order-preserving, so
    /// a crash retracts oldest placements first).
    fn forget_inflight(&mut self, server: ServerId, task: TaskId) {
        let list = &mut self.inflight[server.index()];
        if let Some(pos) = list.iter().position(|&t| t == task) {
            list.remove(pos);
        }
    }

    fn fail_task(
        &mut self,
        idx: usize,
        attempts: u32,
        last_server: Option<ServerId>,
        now: SimTime,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        let task = self.tasks[idx];
        let rec = self.record_mut(task.id);
        rec.outcome = TaskOutcome::Failed;
        rec.attempts = attempts;
        rec.server = last_server;
        self.remaining -= 1;
        self.release_admission(now, sched);
    }

    /// A submission reaches the agent: straight into the decision
    /// pipeline when the admission gate is off (bit-identical to the
    /// pre-backpressure build), through the bounded gate otherwise.
    fn handle_submit(&mut self, now: SimTime, idx: usize, sched: &mut Scheduler<'_, GridEvent>) {
        if self.admission.is_none() {
            let delay = SimTime::from_secs(self.cfg.agent_latency);
            sched.in_(
                delay,
                GridEvent::Schedule {
                    idx,
                    attempt: 1,
                    excluded: Vec::new(),
                },
            );
            return;
        }
        let adm = self.admission.as_mut().expect("gate is on");
        if adm.in_admission < adm.capacity {
            adm.in_admission += 1;
            adm.stats.peak_admitted = adm.stats.peak_admitted.max(adm.in_admission);
            sched.in_(
                SimTime::from_secs(self.cfg.agent_latency),
                GridEvent::Schedule {
                    idx,
                    attempt: 1,
                    excluded: Vec::new(),
                },
            );
        } else {
            self.buffer_or_shed(now, idx, 1, Vec::new(), sched);
        }
    }

    /// Buffers a task behind the full gate — arming its admission
    /// deadline — or sheds it immediately when the buffer itself is
    /// full.
    fn buffer_or_shed(
        &mut self,
        now: SimTime,
        idx: usize,
        attempt: u32,
        excluded: Vec<ServerId>,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        let adm = self.admission.as_mut().expect("gate is on");
        if adm.buffered_total >= adm.buffer_cap {
            adm.stats.shed_overflow += 1;
            self.shed_task(idx);
            return;
        }
        let class = self.users[idx];
        let gen = adm.gen[idx];
        adm.enqueue(
            class,
            BufferedTask {
                idx,
                attempt,
                excluded,
                enqueued: now,
            },
        );
        if self.cfg.admission_deadline.is_finite() {
            sched.in_(
                SimTime::from_secs(self.cfg.admission_deadline),
                GridEvent::AdmissionTimeout { idx, gen },
            );
        }
    }

    /// Terminal admission shed: the task never (re)reached a server.
    /// `attempts` and `server` keep whatever earlier dispatch attempts
    /// recorded.
    fn shed_task(&mut self, idx: usize) {
        let task = self.tasks[idx];
        let rec = self.record_mut(task.id);
        rec.outcome = TaskOutcome::Dropped {
            reason: DropReason::AdmissionDeadline,
        };
        self.remaining -= 1;
    }

    /// An admitted task left the pipeline (terminal, or re-buffered
    /// after a crash retraction): free its slot and pull waiting tasks
    /// through the gate, round-robin across user classes. No-op when
    /// the gate is off.
    fn release_admission(&mut self, now: SimTime, sched: &mut Scheduler<'_, GridEvent>) {
        let Some(adm) = &mut self.admission else {
            return;
        };
        debug_assert!(adm.in_admission > 0, "release without a held slot");
        adm.in_admission -= 1;
        while adm.in_admission < adm.capacity {
            let Some(entry) = adm.dequeue(now) else { break };
            adm.in_admission += 1;
            adm.stats.peak_admitted = adm.stats.peak_admitted.max(adm.in_admission);
            sched.in_(
                SimTime::from_secs(self.cfg.agent_latency),
                GridEvent::Schedule {
                    idx: entry.idx,
                    attempt: entry.attempt,
                    excluded: entry.excluded,
                },
            );
        }
    }

    /// A buffered task's admission deadline fired: shed it unless the
    /// event is stale (the task was dequeued — and possibly re-buffered
    /// — since the deadline was armed).
    fn handle_admission_timeout(&mut self, now: SimTime, idx: usize, gen: u32) {
        let Some(adm) = &mut self.admission else {
            return;
        };
        if !adm.buffered[idx] || adm.gen[idx] != gen {
            return;
        }
        let class = self.users[idx];
        adm.expire(class, idx, now);
        self.shed_task(idx);
    }

    fn handle_schedule(
        &mut self,
        now: SimTime,
        idx: usize,
        attempt: u32,
        excluded: Vec<ServerId>,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        let task = self.tasks[idx];
        // The full two-stage decision runs inside the router: stage 1 on
        // every shard's static index (no HTM drain yet; an exhaustive
        // selector reproduces the old solvers-minus-dead candidate list
        // exactly), stage 2 batched over the merged shortlist on the
        // owning shards. Regret feedback reaches the picked server's
        // shard selector inside `decide`.
        let pick = {
            let dead = &self.agent_known_dead;
            let live = &self.live;
            let excluded = &excluded;
            let admit =
                move |s: ServerId| !excluded.contains(&s) && !dead[s.index()] && live[s.index()];
            self.agent.decide(
                DecisionInputs {
                    now,
                    task,
                    costs: &self.costs,
                    reports: &self.reports,
                    server_mem: &self.server_mem,
                    admit: &admit,
                },
                self.heuristic.as_mut(),
                &mut self.tie_rng,
            )
        };
        let Some(server) = pick else {
            if self.churn.is_some() {
                // Under churn "nobody can take it" is usually transient
                // — the solvers are down, not gone. Re-enter the
                // pipeline after the backoff (with a clean exclusion
                // set: a rejoined server is a fresh candidate) until the
                // dispatch budget runs out, then drop with a reason
                // code so the campaign accounting stays exact.
                if attempt < self.cfg.redispatch_budget {
                    self.churn_stats.redispatches += 1;
                    sched.in_(
                        SimTime::from_secs(self.cfg.redispatch_backoff),
                        GridEvent::Schedule {
                            idx,
                            attempt: attempt + 1,
                            excluded: Vec::new(),
                        },
                    );
                } else {
                    self.churn_stats.drops += 1;
                    let rec = self.record_mut(task.id);
                    rec.outcome = TaskOutcome::Dropped {
                        reason: DropReason::NoLiveSolver,
                    };
                    rec.attempts = attempt;
                    self.remaining -= 1;
                    self.release_admission(now, sched);
                }
                return;
            }
            self.fail_task(idx, attempt, excluded.last().copied(), now, sched);
            return;
        };
        let phase_costs = self
            .costs
            .costs(task.problem, server)
            .expect("heuristic picked a solver");
        let mem = self.costs.problem(task.problem).mem_mb;

        match self.servers[server.index()].reserve(now, task.id, mem) {
            AdmitOutcome::Admitted => {
                // Reservation can push the server into thrashing, which
                // changes the CPU capacity — keep the CPU event fresh.
                self.resched(server, Phase::Compute, sched);
                let commit_span = prof::span(prof::Phase::CommitHooks);
                let predicted = self.agent.predict_completion(now, server, &task);
                self.reports[server.index()].note_assignment();
                // The index's remaining-work ledger grows by the task's
                // *service demand* (unloaded total), not by its predicted
                // residence time: `predicted − now` includes queueing
                // delay, so summing it over a backlog multiply-counts the
                // queue (three queued tasks of duration d would ledger
                // d + 2d + 3d). Service demands sum to exactly the
                // serial drain time of the backlog — the quantity the
                // `d + remaining` stage-1 proxy wants. The completion
                // hook pays back the same amount.
                let work = phase_costs.total();
                self.agent.on_commit(now, server, &task, work);
                drop(commit_span);
                {
                    let rec = self.record_mut(task.id);
                    rec.server = Some(server);
                    rec.unloaded_duration = phase_costs.total();
                    rec.commit_prediction = predicted;
                    rec.attempts = attempt;
                }
                let key = self.flights.insert(Flight {
                    server,
                    costs: phase_costs,
                    phase: Phase::Input,
                    work,
                });
                self.flight_keys[task.id.index()] = Some(key);
                self.inflight[server.index()].push(task.id);
                if let Some(link) = &mut self.client_link {
                    link.add(now, task.id, phase_costs.input);
                    self.resched_client_link(sched);
                } else {
                    self.servers[server.index()].start_input(now, task.id, phase_costs.input);
                    self.resched(server, Phase::Input, sched);
                }
            }
            outcome @ (AdmitOutcome::Rejected | AdmitOutcome::Collapsed) => {
                if outcome == AdmitOutcome::Collapsed || self.servers[server.index()].is_collapsed()
                {
                    // The refusal response tells the agent the server is
                    // gone for good.
                    self.agent_known_dead[server.index()] = true;
                }
                let retry = match self.cfg.fault_tolerance {
                    FaultTolerance::RankedRetry { max_attempts } => attempt < max_attempts,
                    FaultTolerance::None => false,
                };
                if retry {
                    let mut excluded = excluded;
                    excluded.push(server);
                    sched.immediately(GridEvent::Schedule {
                        idx,
                        attempt: attempt + 1,
                        excluded,
                    });
                } else {
                    self.fail_task(idx, attempt, Some(server), now, sched);
                }
            }
        }
    }

    fn handle_phase_done(
        &mut self,
        now: SimTime,
        server: ServerId,
        phase: Phase,
        gen: cas_sim::Generation,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        {
            let res = self.resource(server, phase);
            if !res.generation().is_current(gen) {
                return; // stale: membership/capacity changed since scheduling
            }
        }
        let next = self.resource(server, phase).next_completion(now);
        let Some((task, when)) = next else {
            return;
        };
        if when.as_secs() > now.as_secs() + COMPLETION_EPS {
            // Not actually done yet (same generation but queried earlier in
            // the same instant); re-arm at the true time.
            sched.at(when, GridEvent::PhaseDone { server, phase, gen });
            return;
        }
        let flight = *self.flight(task);
        debug_assert_eq!(flight.server, server);
        match phase {
            Phase::Input => {
                self.resource_mut(server, Phase::Input).remove(now, task);
                self.resched(server, Phase::Input, sched);
                self.input_arrived(now, task, sched);
            }
            Phase::Compute => {
                self.touch_monitor(server, now);
                self.servers[server.index()].finish_compute(now, task);
                // Correction 2: the server notifies the agent of the
                // completed computation.
                self.reports[server.index()].note_completion();
                self.flight_mut(task).phase = Phase::Output;
                if let Some(link) = &mut self.client_link {
                    link.add(now, task, flight.costs.output);
                    self.resched(server, Phase::Compute, sched);
                    self.resched_client_link(sched);
                } else {
                    self.servers[server.index()].start_output(now, task, flight.costs.output);
                    self.resched(server, Phase::Compute, sched);
                    self.resched(server, Phase::Output, sched);
                }
            }
            Phase::Output => {
                self.resource_mut(server, Phase::Output).remove(now, task);
                self.resched(server, Phase::Output, sched);
                self.output_arrived(now, task, sched);
            }
        }
    }

    /// Shared-link transfer completion: dispatch on the task's phase.
    fn handle_client_link_done(
        &mut self,
        now: SimTime,
        gen: cas_sim::Generation,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        {
            let link = self.client_link.as_ref().expect("shared link enabled");
            if !link.generation().is_current(gen) {
                return;
            }
        }
        let next = self
            .client_link
            .as_ref()
            .expect("shared link enabled")
            .next_completion(now);
        let Some((task, when)) = next else { return };
        if when.as_secs() > now.as_secs() + COMPLETION_EPS {
            sched.at(when, GridEvent::ClientLinkDone { gen });
            return;
        }
        self.client_link
            .as_mut()
            .expect("shared link enabled")
            .remove(now, task);
        let phase = self.flight(task).phase;
        self.resched_client_link(sched);
        match phase {
            Phase::Input => self.input_arrived(now, task, sched),
            Phase::Output => self.output_arrived(now, task, sched),
            Phase::Compute => unreachable!("compute never runs on the client link"),
        }
    }

    fn handle_load_report(
        &mut self,
        now: SimTime,
        server: ServerId,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        self.report_events += 1;
        let len = self.servers[server.index()].run_queue_len();
        let value = self.monitors[server.index()].observe(now, len);
        self.reports[server.index()].refresh(now, value);
        if self.remaining > 0 {
            sched.in_(
                SimTime::from_secs(self.cfg.load_report_period),
                GridEvent::LoadReport { server },
            );
        }
    }

    /// Aggregated report: one kernel event refreshes the whole shard
    /// block. Per-server work is identical to the per-server events (one
    /// monitor observation and one report refresh each); only the kernel
    /// pressure changes — O(n_shards) pending report events instead of
    /// O(n_servers).
    fn handle_shard_load_report(
        &mut self,
        now: SimTime,
        shard: usize,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        if shard >= self.agent.map().n_shards() {
            // A rebalance shrank the federation after this report was
            // scheduled; the stale event dies here and the surviving
            // shards' own report chains cover every server.
            return;
        }
        self.report_events += 1;
        let members = self.agent.map().members(shard);
        for s in members {
            let i = s as usize;
            let len = self.servers[i].run_queue_len();
            let value = self.monitors[i].observe(now, len);
            self.reports[i].refresh(now, value);
        }
        if self.remaining > 0 {
            sched.in_(
                SimTime::from_secs(self.cfg.load_report_period),
                GridEvent::ShardLoadReport { shard },
            );
        }
    }

    fn handle_noise_redraw(
        &mut self,
        now: SimTime,
        server: ServerId,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        if self.cfg.noise_sigma > 0.0 {
            let i = server.index();
            let cpu_factor = self.noise_dist.sample(&mut self.cpu_noise[i]);
            let net_factor = self.noise_dist.sample(&mut self.net_noise[i]);
            self.servers[i].set_noise(now, cpu_factor);
            self.servers[i].link_in.set_capacity(now, net_factor);
            self.servers[i].link_out.set_capacity(now, net_factor);
            self.resched(server, Phase::Input, sched);
            self.resched(server, Phase::Compute, sched);
            self.resched(server, Phase::Output, sched);
            // In shared-link mode, server 0's net stream doubles as the
            // client link's noise source (one redraw per period).
            if i == 0 && self.client_link.is_some() {
                let factor = self.noise_dist.sample(&mut self.net_noise[0]);
                self.client_link
                    .as_mut()
                    .expect("just checked")
                    .set_capacity(now, factor);
                self.resched_client_link(sched);
            }
        }
        if self.remaining > 0 {
            sched.in_(
                SimTime::from_secs(self.cfg.noise_redraw_period),
                GridEvent::NoiseRedraw { server },
            );
        }
    }

    /// Undoes one in-flight placement on a crashed server: the task is
    /// pulled out of whatever resource it occupies (its memory
    /// reservation released), the agent's model retracts it through the
    /// HTM/index hooks, and the task re-enters the decision pipeline
    /// after the re-dispatch backoff — or is dropped with a reason code
    /// once its dispatch budget is spent.
    fn retract_flight(
        &mut self,
        now: SimTime,
        server: ServerId,
        task: TaskId,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        let Some(key) = self.flight_keys[task.index()].take() else {
            return;
        };
        let flight = self.flights.remove(key).expect("flight key is live");
        debug_assert_eq!(flight.server, server);
        match flight.phase {
            Phase::Input => {
                if let Some(link) = &mut self.client_link {
                    link.remove(now, task);
                    self.resched_client_link(sched);
                } else {
                    self.resource_mut(server, Phase::Input).remove(now, task);
                    self.resched(server, Phase::Input, sched);
                }
                // The commit-time memory reservation is still held;
                // releasing it can ease thrashing, which changes the CPU
                // capacity — keep the CPU event fresh.
                self.servers[server.index()].release(now, task);
                self.resched(server, Phase::Compute, sched);
            }
            Phase::Compute => {
                self.touch_monitor(server, now);
                self.servers[server.index()].finish_compute(now, task);
                self.resched(server, Phase::Compute, sched);
            }
            Phase::Output => {
                if let Some(link) = &mut self.client_link {
                    link.remove(now, task);
                    self.resched_client_link(sched);
                } else {
                    self.resource_mut(server, Phase::Output).remove(now, task);
                    self.resched(server, Phase::Output, sched);
                }
            }
        }
        self.agent.on_retract(now, server, task, flight.work);
        self.churn_stats.retractions += 1;
        let attempts = self.records[task.index()].attempts;
        if attempts < self.cfg.redispatch_budget {
            self.churn_stats.redispatches += 1;
            if let Some(adm) = &mut self.admission {
                // Under backpressure the bounded buffer replaces the
                // re-dispatch backoff: the victim re-enters the queue
                // (that one `redispatches` increment above is its only
                // count — the dequeue does not count it again), its
                // held slot is released below, and the fair dequeue
                // decides when it reaches the pipeline again.
                adm.stats.reentries += 1;
                self.buffer_or_shed(now, task.index(), attempts + 1, vec![server], sched);
                self.release_admission(now, sched);
            } else {
                sched.in_(
                    SimTime::from_secs(self.cfg.redispatch_backoff),
                    GridEvent::Schedule {
                        idx: task.index(),
                        attempt: attempts + 1,
                        excluded: vec![server],
                    },
                );
            }
        } else {
            self.churn_stats.drops += 1;
            let rec = self.record_mut(task);
            rec.outcome = TaskOutcome::Dropped {
                reason: DropReason::RedispatchBudget,
            };
            self.remaining -= 1;
            self.release_admission(now, sched);
        }
    }

    /// Re-partitions the federation when the live-server count has
    /// drifted past the size band (no-op for the single-agent path, or
    /// while the boundaries still fit). Growth of the shard count under
    /// aggregated reports seeds report events for the new shards;
    /// shrink leaves the stale events to die on the bounds check in
    /// [`GridWorld::handle_shard_load_report`].
    fn maybe_rebalance(&mut self, sched: &mut Scheduler<'_, GridEvent>) {
        if !self.agent.is_federated() {
            return;
        }
        let (lo, hi) = self.band;
        let Some(new_map) = self.agent.map().rebalanced(&self.live, lo, hi) else {
            return;
        };
        let old_shards = self.agent.n_shards();
        self.agent.rebalance(&self.costs, new_map);
        self.churn_stats.rebalances += 1;
        let new_shards = self.agent.n_shards();
        if self.cfg.aggregated_reports && new_shards > old_shards && self.remaining > 0 {
            for k in old_shards..new_shards {
                let phase = self.cfg.load_report_period * (k + 1) as f64 / new_shards as f64;
                sched.in_(
                    SimTime::from_secs(phase),
                    GridEvent::ShardLoadReport { shard: k },
                );
            }
        }
    }

    /// A server crashes: every placement in flight on it is retracted
    /// and re-dispatched (or dropped), the server leaves the rankings
    /// and the admit filter, and a rejoin is scheduled after the
    /// repair-time draw.
    fn handle_server_crash(
        &mut self,
        now: SimTime,
        server: ServerId,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        if !self.live[server.index()] {
            return;
        }
        self.churn_stats.crashes += 1;
        self.live[server.index()] = false;
        self.agent.set_available(server, false);
        let victims = std::mem::take(&mut self.inflight[server.index()]);
        for task in victims {
            self.retract_flight(now, server, task, sched);
        }
        self.maybe_rebalance(sched);
        if self.remaining > 0 {
            let downtime = self
                .churn
                .as_mut()
                .expect("crash events exist only under churn")
                .next_downtime(server);
            sched.in_(
                SimTime::from_secs(downtime),
                GridEvent::ServerJoin { server },
            );
        }
    }

    /// A crashed server comes back: it rejoins the rankings at its
    /// believed load (its ledger kept draining while it was away), its
    /// monitor history and report restart fresh, and the next crash is
    /// scheduled from the uptime draw.
    fn handle_server_join(
        &mut self,
        now: SimTime,
        server: ServerId,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        if self.live[server.index()] {
            return;
        }
        self.churn_stats.joins += 1;
        self.live[server.index()] = true;
        self.agent.set_available(server, true);
        // Rejoin resets the agent's collapse knowledge; a server whose
        // runtime really did collapse will refuse its next reservation
        // and be re-marked.
        self.agent_known_dead[server.index()] = false;
        self.monitors[server.index()] = LoadAverage::new(self.cfg.load_tau);
        self.reports[server.index()] = LoadReport::initial(server);
        let _ = now;
        self.maybe_rebalance(sched);
        if self.remaining > 0 {
            let uptime = self
                .churn
                .as_mut()
                .expect("join events exist only under churn")
                .next_uptime(server);
            sched.in_(
                SimTime::from_secs(uptime),
                GridEvent::ServerCrash { server },
            );
        }
    }

    /// A server leaves gracefully: no new placements (rankings and admit
    /// exclude it immediately) but work already in flight drains to
    /// completion — the index ledger and HTM hooks on a down server stay
    /// consistent by design.
    fn handle_server_leave(
        &mut self,
        _now: SimTime,
        server: ServerId,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        if !self.live[server.index()] {
            return;
        }
        self.churn_stats.leaves += 1;
        self.live[server.index()] = false;
        self.agent.set_available(server, false);
        self.maybe_rebalance(sched);
    }

    /// A brand-new server is admitted mid-campaign: every per-server
    /// vector of the world grows by one, the farm-wide cost table gains
    /// the declared column, and the agent joins it into the owning (last)
    /// shard through the proven incremental pushes — no engine rebuild,
    /// no other shard touched. The newcomer is live, idle and eligible
    /// from its very next decision; its periodic report/noise events are
    /// scheduled here (in aggregated-report mode the owning shard's
    /// existing report chain covers it for free, since shard reports walk
    /// the *current* block). The fault schedule deliberately does not
    /// extend to provisioned servers: churn streams are drawn per initial
    /// server at init so the schedule stays a function of the churn seed
    /// alone.
    fn handle_server_provision(
        &mut self,
        now: SimTime,
        idx: usize,
        sched: &mut Scheduler<'_, GridEvent>,
    ) {
        let spec = self.provisions[idx].spec.clone();
        let column = self.provisions[idx].column.clone();
        assert_eq!(
            column.len(),
            self.costs.n_problems(),
            "provision column must cover every problem"
        );
        let id = ServerId(self.servers.len() as u32);
        self.costs.push_server(column.clone());
        let agent_id = self.agent.push_server(column);
        assert_eq!(agent_id, id, "world and router must agree on the new id");
        self.server_mem.push(spec.total_mem_mb());
        self.servers.push(ServerRuntime::new(spec, self.cfg.memory));
        self.monitors.push(LoadAverage::new(self.cfg.load_tau));
        self.reports.push(LoadReport::initial(id));
        self.cpu_noise
            .push(RngStream::derive(self.cfg.seed, StreamKind::CpuNoise(id.0)));
        self.net_noise
            .push(RngStream::derive(self.cfg.seed, StreamKind::NetNoise(id.0)));
        self.agent_known_dead.push(false);
        self.live.push(true);
        self.inflight.push(Vec::new());
        self.churn_stats.provisions += 1;
        let _ = now;
        if self.remaining > 0 {
            if !self.cfg.aggregated_reports {
                sched.in_(
                    SimTime::from_secs(self.cfg.load_report_period),
                    GridEvent::LoadReport { server: id },
                );
            }
            if self.cfg.noise_sigma > 0.0 {
                sched.in_(
                    SimTime::from_secs(self.cfg.noise_redraw_period),
                    GridEvent::NoiseRedraw { server: id },
                );
            }
        }
        // Growth can push the last shard past the live-count band; the
        // rebalance machinery needs op history, which only a churning
        // federation records.
        if self.churn.is_some() {
            self.maybe_rebalance(sched);
        }
    }
}

impl World for GridWorld {
    type Event = GridEvent;

    fn init(&mut self, sched: &mut Scheduler<'_, GridEvent>) {
        if self.cfg.admission_enabled() {
            self.admission = Some(AdmissionState::new(&self.cfg, &self.users));
        }
        for (idx, task) in self.tasks.iter().enumerate() {
            sched.at(task.arrival, GridEvent::Submit { idx });
        }
        let n = self.servers.len().max(1);
        if self.cfg.aggregated_reports {
            // One report event per shard, staggered across shards the
            // same way per-server reports stagger across servers.
            let n_shards = self.agent.map().n_shards().max(1);
            for k in 0..self.agent.map().n_shards() {
                let phase = self.cfg.load_report_period * (k + 1) as f64 / n_shards as f64;
                sched.at(
                    SimTime::from_secs(phase),
                    GridEvent::ShardLoadReport { shard: k },
                );
            }
        }
        for i in 0..self.servers.len() {
            // Stagger periodic events across servers so reports don't all
            // land on the same instant.
            if !self.cfg.aggregated_reports {
                let phase = self.cfg.load_report_period * (i + 1) as f64 / n as f64;
                sched.at(
                    SimTime::from_secs(phase),
                    GridEvent::LoadReport {
                        server: ServerId(i as u32),
                    },
                );
            }
            if self.cfg.noise_sigma > 0.0 {
                let phase = self.cfg.noise_redraw_period * (i + 1) as f64 / n as f64;
                sched.at(
                    SimTime::from_secs(phase),
                    GridEvent::NoiseRedraw {
                        server: ServerId(i as u32),
                    },
                );
            }
        }
        for (idx, p) in self.provisions.iter().enumerate() {
            sched.at(p.at, GridEvent::ServerProvision { idx });
        }
        if let Some(churn) = &mut self.churn {
            // Each server's first failure comes from its own uptime
            // stream, so the fault schedule is a function of the churn
            // seed alone — independent of workload or heuristic.
            for i in 0..self.servers.len() {
                let server = ServerId(i as u32);
                let uptime = churn.next_uptime(server);
                sched.at(
                    SimTime::from_secs(uptime),
                    GridEvent::ServerCrash { server },
                );
            }
        }
    }

    fn handle(&mut self, now: SimTime, event: GridEvent, sched: &mut Scheduler<'_, GridEvent>) {
        match event {
            GridEvent::Submit { idx } => self.handle_submit(now, idx, sched),
            GridEvent::AdmissionTimeout { idx, gen } => {
                self.handle_admission_timeout(now, idx, gen)
            }
            GridEvent::Schedule {
                idx,
                attempt,
                excluded,
            } => self.handle_schedule(now, idx, attempt, excluded, sched),
            GridEvent::PhaseDone { server, phase, gen } => {
                self.handle_phase_done(now, server, phase, gen, sched)
            }
            GridEvent::ClientLinkDone { gen } => self.handle_client_link_done(now, gen, sched),
            GridEvent::LoadReport { server } => {
                let _reports = prof::span(prof::Phase::Reports);
                self.handle_load_report(now, server, sched)
            }
            GridEvent::ShardLoadReport { shard } => {
                let _reports = prof::span(prof::Phase::Reports);
                self.handle_shard_load_report(now, shard, sched)
            }
            GridEvent::NoiseRedraw { server } => self.handle_noise_redraw(now, server, sched),
            GridEvent::ServerCrash { server } => {
                let _churn = prof::span(prof::Phase::Churn);
                self.handle_server_crash(now, server, sched)
            }
            GridEvent::ServerProvision { idx } => {
                let _churn = prof::span(prof::Phase::Churn);
                self.handle_server_provision(now, idx, sched)
            }
            GridEvent::ServerJoin { server } => {
                let _churn = prof::span(prof::Phase::Churn);
                self.handle_server_join(now, server, sched)
            }
            GridEvent::ServerLeave { server } => {
                let _churn = prof::span(prof::Phase::Churn);
                self.handle_server_leave(now, server, sched)
            }
        }
    }
}

/// Drives a built world to completion and back-fills the HTM's final
/// simulated completion dates (Table 1's "simulated completion date"
/// column), merged across shards.
fn run_world(world: GridWorld) -> GridWorld {
    let mut sim = Simulation::new(world);
    let outcome = sim.run_to_completion();
    debug_assert_eq!(outcome, cas_sim::engine::RunOutcome::Exhausted);
    let mut world = sim.into_world();
    debug_assert_eq!(
        world.remaining(),
        0,
        "all tasks must reach a terminal state"
    );
    let simulated = world.agent.simulated_completions();
    for rec in &mut world.records {
        rec.predicted_completion = simulated.get(&rec.task).copied();
    }
    world
}

/// Runs one experiment to completion and returns the per-task records.
pub fn run_experiment(
    cfg: ExperimentConfig,
    costs: CostTable,
    servers: Vec<ServerSpec>,
    tasks: Vec<TaskInstance>,
) -> Vec<TaskRecord> {
    run_world(GridWorld::new(cfg, costs, servers, tasks)).records
}

/// Runs one experiment with per-task user classes (trace workloads) and
/// returns the records plus the admission observability surface: the
/// gate's counters and the per-task buffered seconds
/// (`cas_metrics::per_class_slo` consumes records + users + waits).
pub fn run_experiment_with_users(
    cfg: ExperimentConfig,
    costs: CostTable,
    servers: Vec<ServerSpec>,
    tasks: Vec<TaskInstance>,
    users: Vec<u32>,
) -> (Vec<TaskRecord>, AdmissionStats, Vec<f64>) {
    let world = run_world(GridWorld::new(cfg, costs, servers, tasks).with_users(users));
    let stats = world.admission_stats();
    let waits = world.admission_waits().to_vec();
    (world.records, stats, waits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Sharding;
    use cas_core::heuristics::HeuristicKind;
    use cas_platform::Problem;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Six heterogeneous servers, two problems (P1 solvable on half the
    /// farm), small transfers — wide enough that a shard federation has
    /// real blocks to own.
    fn six_setup() -> (CostTable, Vec<ServerSpec>) {
        let mut costs = CostTable::new(6);
        costs.add_problem(
            Problem::new("p0", 1.0, 0.5, 0.0),
            (0..6)
                .map(|s| Some(PhaseCosts::new(0.5, 8.0 + 4.0 * s as f64, 0.5)))
                .collect(),
        );
        costs.add_problem(
            Problem::new("p1", 1.0, 0.5, 0.0),
            (0..6)
                .map(|s| (s % 2 == 0).then(|| PhaseCosts::new(0.3, 20.0 - 2.0 * s as f64, 0.3)))
                .collect(),
        );
        let servers = (0..6)
            .map(|s| ServerSpec::new(format!("s{s}"), 1000.0 - 100.0 * s as f64, 1024.0, 1024.0))
            .collect();
        (costs, servers)
    }

    fn six_tasks(n: usize) -> Vec<TaskInstance> {
        (0..n)
            .map(|i| {
                TaskInstance::new(
                    TaskId(i as u64),
                    cas_platform::ProblemId((i % 2) as u32),
                    t(i as f64 * 0.7),
                )
            })
            .collect()
    }

    /// Two servers: fast (10 s compute) and slow (30 s), 1 s transfers
    /// each way, no memory pressure.
    fn mini_setup() -> (CostTable, Vec<ServerSpec>) {
        let mut costs = CostTable::new(2);
        costs.add_problem(
            Problem::new("p", 1.0, 0.5, 0.0),
            vec![
                Some(PhaseCosts::new(1.0, 10.0, 1.0)),
                Some(PhaseCosts::new(1.0, 30.0, 1.0)),
            ],
        );
        let servers = vec![
            ServerSpec::new("fast", 1000.0, 1024.0, 1024.0),
            ServerSpec::new("slow", 500.0, 1024.0, 1024.0),
        ];
        (costs, servers)
    }

    fn mini_tasks(arrivals: &[f64]) -> Vec<TaskInstance> {
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| TaskInstance::new(TaskId(i as u64), cas_platform::ProblemId(0), t(a)))
            .collect()
    }

    #[test]
    fn single_task_completes_at_unloaded_duration() {
        let (costs, servers) = mini_setup();
        let cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1);
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&[5.0]));
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert!(r.is_completed());
        assert_eq!(r.server, Some(ServerId(0)), "picks the fast server");
        // 5.0 arrival + 1 + 10 + 1 = 17.0, no noise, no latency.
        assert!(r.finished().unwrap().approx_eq(t(17.0), 1e-9));
        assert_eq!(r.unloaded_duration, 12.0);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn htm_prediction_is_exact_in_ideal_mode() {
        let (costs, servers) = mini_setup();
        let cfg = ExperimentConfig::ideal(HeuristicKind::Msf, 3);
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&[0.0, 2.0, 4.0, 6.0, 8.0]));
        for r in &recs {
            let pred = r.predicted_completion.expect("HTM committed");
            let actual = r.finished().expect("completed");
            assert!(
                pred.approx_eq(actual, 1e-6),
                "task {}: predicted {pred:?}, actual {actual:?}",
                r.task
            );
        }
    }

    #[test]
    fn noise_makes_predictions_imperfect_but_close() {
        let (costs, servers) = mini_setup();
        let mut cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 7);
        cfg.memory = cas_platform::MemoryModel::disabled();
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&[0.0, 3.0, 6.0, 9.0, 12.0]));
        let errors: Vec<f64> = recs
            .iter()
            .filter_map(|r| r.prediction_error_pct())
            .collect();
        assert_eq!(errors.len(), 5);
        assert!(errors.iter().any(|&e| e > 0.0), "noise must show up");
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(mean < 15.0, "errors should stay moderate, got {mean}");
    }

    #[test]
    fn contention_stretches_flows() {
        let (costs, servers) = mini_setup();
        let cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1);
        // Twenty tasks arriving almost at once: heavy sharing.
        let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&arrivals));
        assert!(recs.iter().all(|r| r.is_completed()));
        let max_stretch = recs.iter().filter_map(|r| r.stretch()).fold(0.0, f64::max);
        assert!(
            max_stretch > 1.5,
            "sharing must slow tasks, got {max_stretch}"
        );
    }

    #[test]
    fn memory_exhaustion_fails_tasks_without_retry() {
        // One tiny server (RAM+swap = 150 MB), tasks need 100 MB each: the
        // second concurrent task must be refused.
        let mut costs = CostTable::new(1);
        costs.add_problem(
            Problem::new("big", 1.0, 1.0, 100.0),
            vec![Some(PhaseCosts::new(1.0, 50.0, 1.0))],
        );
        let servers = vec![ServerSpec::new("tiny", 300.0, 100.0, 50.0)];
        let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1);
        cfg.memory = cas_platform::MemoryModel::default();
        cfg.fault_tolerance = FaultTolerance::None;
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&[0.0, 1.0]));
        assert!(recs[0].is_completed());
        assert!(!recs[1].is_completed());
        assert_eq!(recs[1].attempts, 1);
    }

    #[test]
    fn ranked_retry_rescues_rejected_tasks() {
        // Two servers; the fast one is memory-tiny, the slow one is big.
        let mut costs = CostTable::new(2);
        costs.add_problem(
            Problem::new("big", 1.0, 1.0, 100.0),
            vec![
                Some(PhaseCosts::new(1.0, 10.0, 1.0)),
                Some(PhaseCosts::new(1.0, 40.0, 1.0)),
            ],
        );
        let servers = vec![
            ServerSpec::new("fast-tiny", 1000.0, 100.0, 20.0),
            ServerSpec::new("slow-big", 500.0, 2048.0, 1024.0),
        ];
        let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1);
        cfg.memory = cas_platform::MemoryModel::default();
        cfg.fault_tolerance = FaultTolerance::RankedRetry { max_attempts: 4 };
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&[0.0, 0.5]));
        assert!(recs.iter().all(|r| r.is_completed()), "{recs:?}");
        // The second task was bounced off the fast server to the slow one.
        let rescued = recs.iter().find(|r| r.attempts > 1).expect("one retry");
        assert_eq!(rescued.server, Some(ServerId(1)));
    }

    #[test]
    fn deterministic_across_runs() {
        let (costs, servers) = mini_setup();
        let cfg = ExperimentConfig::paper(HeuristicKind::Msf, 42);
        let arrivals: Vec<f64> = (0..30).map(|i| i as f64 * 2.0).collect();
        let a = run_experiment(cfg, costs.clone(), servers.clone(), mini_tasks(&arrivals));
        let b = run_experiment(cfg, costs, servers, mini_tasks(&arrivals));
        assert_eq!(a, b);
    }

    #[test]
    fn all_heuristics_run_end_to_end() {
        let (costs, servers) = mini_setup();
        let arrivals: Vec<f64> = (0..15).map(|i| i as f64 * 1.5).collect();
        for kind in HeuristicKind::ALL {
            let cfg = ExperimentConfig::paper(kind, 5);
            let recs = run_experiment(cfg, costs.clone(), servers.clone(), mini_tasks(&arrivals));
            assert_eq!(recs.len(), 15, "{kind:?}");
            assert!(
                recs.iter().all(|r| r.is_completed()),
                "{kind:?} left tasks unfinished"
            );
        }
    }

    #[test]
    fn shared_client_link_serialises_transfers() {
        // Two tasks on two different servers with long input transfers: in
        // per-server mode their inputs run in parallel (each 10 s); on a
        // shared client link they halve each other's bandwidth.
        let mut costs = CostTable::new(2);
        costs.add_problem(
            cas_platform::Problem::new("p", 1.0, 0.0, 0.0),
            vec![
                Some(PhaseCosts::new(10.0, 1.0, 0.0)),
                Some(PhaseCosts::new(10.0, 1.0, 0.0)),
            ],
        );
        let servers = vec![
            ServerSpec::new("a", 1000.0, 512.0, 512.0),
            ServerSpec::new("b", 1000.0, 512.0, 512.0),
        ];
        // MP maps the second task to the idle server, so the two inputs
        // overlap fully in time.
        let mut cfg = ExperimentConfig::ideal(cas_core::heuristics::HeuristicKind::Mp, 1);
        let tasks = mini_tasks(&[0.0, 0.0]);
        let per_server = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        cfg.shared_client_link = true;
        let shared = run_experiment(cfg, costs, servers, tasks);
        let end = |recs: &[cas_metrics::TaskRecord]| {
            recs.iter()
                .map(|r| r.finished().unwrap().as_secs())
                .fold(0.0, f64::max)
        };
        // Per-server: both inputs 0..10, compute 10..11 → last done at 11.
        assert!((end(&per_server) - 11.0).abs() < 1e-6, "{per_server:?}");
        // Shared: both transfers at half rate finish at t=20 → done at 21.
        assert!((end(&shared) - 21.0).abs() < 1e-6, "{shared:?}");
    }

    #[test]
    fn shared_client_link_full_workload_completes() {
        let (costs, servers) = mini_setup();
        let arrivals: Vec<f64> = (0..25).map(|i| i as f64 * 1.0).collect();
        for kind in [
            cas_core::heuristics::HeuristicKind::Mct,
            cas_core::heuristics::HeuristicKind::Msf,
        ] {
            let mut cfg = ExperimentConfig::paper(kind, 3);
            cfg.shared_client_link = true;
            let recs = run_experiment(cfg, costs.clone(), servers.clone(), mini_tasks(&arrivals));
            assert!(recs.iter().all(|r| r.is_completed()), "{kind:?}");
        }
    }

    /// The end-to-end acceptance property of the two-stage pipeline: a
    /// `TopK` selector wide enough to never prune is **bit-identical** to
    /// the exhaustive selector across whole experiments — same servers,
    /// same attempts, same completion dates — for every shipped
    /// heuristic, including the retry/memory/noise machinery.
    #[test]
    fn topk_full_width_matches_exhaustive_end_to_end() {
        let (costs, servers) = mini_setup();
        let arrivals: Vec<f64> = (0..25).map(|i| i as f64 * 0.8).collect();
        for kind in HeuristicKind::ALL {
            let cfg = ExperimentConfig::paper(kind, 21);
            let base = run_experiment(cfg, costs.clone(), servers.clone(), mini_tasks(&arrivals));
            let wide = cfg.with_selector(cas_core::SelectorKind::TopK { k: 64 });
            let pruned =
                run_experiment(wide, costs.clone(), servers.clone(), mini_tasks(&arrivals));
            assert_eq!(base, pruned, "{kind:?} diverged under TopK(k >= n)");
        }
    }

    /// Aggressive pruning (k = 1, and a tight adaptive band) must still
    /// complete every task — the shortlist never goes empty while an
    /// admissible server exists.
    #[test]
    fn pruned_selectors_complete_all_tasks() {
        let (costs, servers) = mini_setup();
        let arrivals: Vec<f64> = (0..20).map(|i| i as f64 * 1.2).collect();
        for selector in [
            cas_core::SelectorKind::TopK { k: 1 },
            cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 2 },
        ] {
            for kind in [HeuristicKind::Hmct, HeuristicKind::Msf, HeuristicKind::Mct] {
                let cfg = ExperimentConfig::paper(kind, 13).with_selector(selector);
                let recs =
                    run_experiment(cfg, costs.clone(), servers.clone(), mini_tasks(&arrivals));
                assert!(
                    recs.iter().all(|r| r.is_completed()),
                    "{kind:?}/{selector:?} left tasks unfinished"
                );
            }
        }
    }

    /// Retry exclusions must stay honoured through the selector: after a
    /// refusal the excluded server cannot reappear in the shortlist, even
    /// when it is the static ranking's best.
    #[test]
    fn pruned_retry_respects_exclusions() {
        // Fast-but-tiny vs slow-but-roomy, tasks need 100 MB (as in
        // `ranked_retry_rescues_rejected_tasks`) — under TopK(1) the
        // first pick is the fast server; the retry must reach the slow
        // one rather than re-proposing the refuser.
        let mut costs = CostTable::new(2);
        costs.add_problem(
            cas_platform::Problem::new("big", 1.0, 1.0, 100.0),
            vec![
                Some(PhaseCosts::new(1.0, 10.0, 1.0)),
                Some(PhaseCosts::new(1.0, 40.0, 1.0)),
            ],
        );
        let servers = vec![
            ServerSpec::new("fast-tiny", 1000.0, 100.0, 20.0),
            ServerSpec::new("slow-big", 500.0, 2048.0, 1024.0),
        ];
        let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1)
            .with_selector(cas_core::SelectorKind::TopK { k: 1 });
        cfg.memory = cas_platform::MemoryModel::default();
        cfg.fault_tolerance = FaultTolerance::RankedRetry { max_attempts: 4 };
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&[0.0, 0.5]));
        assert!(recs.iter().all(|r| r.is_completed()), "{recs:?}");
        let rescued = recs.iter().find(|r| r.attempts > 1).expect("one retry");
        assert_eq!(rescued.server, Some(ServerId(1)));
    }

    /// The federation's acceptance property: `--shards 1` (the full
    /// router machinery over one shard) is **bit-identical** to the
    /// unsharded single-agent engine across whole experiments — same
    /// servers, same attempts, same completion dates — for every shipped
    /// heuristic × every selector backend, including the
    /// retry/memory/noise machinery.
    #[test]
    fn federated_single_shard_bitwise_matches_unsharded_end_to_end() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        for kind in HeuristicKind::ALL {
            for selector in [
                cas_core::SelectorKind::Exhaustive,
                cas_core::SelectorKind::TopK { k: 1 },
                cas_core::SelectorKind::TopK { k: 64 },
                cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 3 },
            ] {
                let cfg = ExperimentConfig::paper(kind, 33).with_selector(selector);
                let single = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                let routed = run_experiment(
                    cfg.with_shards(Sharding::Federated { shards: 1 }),
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                );
                assert_eq!(
                    single, routed,
                    "{kind:?}/{selector:?} diverged under --shards 1"
                );
            }
        }
    }

    /// Under the exhaustive selector the scatter–merge–gather router is
    /// bit-identical to the single agent at any shard count: the union
    /// of per-shard every-solver loops is the every-solver loop, and
    /// every hook routes to the same model state.
    #[test]
    fn federated_exhaustive_matches_unsharded_for_any_shard_count() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        for kind in HeuristicKind::ALL {
            let cfg = ExperimentConfig::paper(kind, 9);
            let single = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
            for shards in [2, 3, 6] {
                let routed = run_experiment(
                    cfg.with_shards(Sharding::Federated { shards }),
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                );
                assert_eq!(single, routed, "{kind:?} diverged at {shards} shards");
            }
        }
    }

    /// Pruning selectors across a real federation (each shard adapting
    /// its own width) must still complete every task, under both index
    /// scoring proxies and auto sharding.
    #[test]
    fn sharded_pruned_campaigns_complete() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        for selector in [
            cas_core::SelectorKind::TopK { k: 1 },
            cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 2 },
        ] {
            for shards in [Sharding::AUTO, Sharding::Federated { shards: 3 }] {
                for scoring in [
                    cas_platform::IndexScoring::RemainingWork,
                    cas_platform::IndexScoring::ActiveCount,
                ] {
                    let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 17)
                        .with_selector(selector)
                        .with_shards(shards)
                        .with_index_scoring(scoring);
                    let recs = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                    assert!(
                        recs.iter().all(|r| r.is_completed()),
                        "{selector:?}/{shards:?}/{scoring:?} left tasks unfinished"
                    );
                }
            }
        }
    }

    /// The skyline acceptance property, end to end: whole-campaign
    /// record equality, skyline-on versus skyline-off, for **every**
    /// heuristic × selector backend at S = 4 — same servers, same
    /// attempts, same completion dates, bit for bit, including the
    /// retry/memory/noise machinery. The lazy merge may only prune
    /// walks, never decisions.
    #[test]
    fn skyline_campaigns_bitwise_match_eager_end_to_end() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        for kind in HeuristicKind::ALL {
            for selector in [
                cas_core::SelectorKind::Exhaustive,
                cas_core::SelectorKind::TopK { k: 1 },
                cas_core::SelectorKind::TopK { k: 64 },
                cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 3 },
            ] {
                let cfg = ExperimentConfig::paper(kind, 27)
                    .with_selector(selector)
                    .with_shards(Sharding::Federated { shards: 4 });
                assert!(cfg.skyline, "lazy merge is the default");
                let lazy = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                let eager = run_experiment(
                    cfg.with_skyline(false),
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                );
                assert_eq!(
                    lazy, eager,
                    "{kind:?}/{selector:?} diverged between skyline on and off"
                );
            }
        }
    }

    /// The flat-rankings acceptance property, end to end: whole-campaign
    /// record equality, flat ladder versus the BTree spec, for **every**
    /// heuristic × selector backend, unsharded and at S = 4 — same
    /// servers, same attempts, same completion dates, bit for bit. The
    /// ranking storage is pure representation; it may never change a
    /// decision.
    #[test]
    fn flat_rankings_campaigns_bitwise_match_btree_end_to_end() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        for kind in HeuristicKind::ALL {
            for selector in [
                cas_core::SelectorKind::Exhaustive,
                cas_core::SelectorKind::TopK { k: 1 },
                cas_core::SelectorKind::TopK { k: 64 },
                cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 3 },
            ] {
                for shards in [Sharding::Single, Sharding::Federated { shards: 4 }] {
                    let cfg = ExperimentConfig::paper(kind, 41)
                        .with_selector(selector)
                        .with_shards(shards);
                    assert_eq!(
                        cfg.rankings,
                        cas_platform::RankingsBackend::Flat,
                        "flat ladder is the default"
                    );
                    let flat = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                    let btree = run_experiment(
                        cfg.with_rankings(cas_platform::RankingsBackend::Btree),
                        costs.clone(),
                        servers.clone(),
                        tasks.clone(),
                    );
                    assert_eq!(
                        flat, btree,
                        "{kind:?}/{selector:?}/{shards:?} diverged between rankings backends"
                    );
                }
            }
        }
    }

    /// The stage-2 acceptance property, end to end: whole-campaign
    /// record equality, fast drain engine (the default: truncated
    /// prefix-sharing drains) versus the full pre-optimisation engine,
    /// for **every** heuristic × selector backend, unsharded and at
    /// S = 4 — same servers, same attempts, same completion dates, bit
    /// for bit. Covers both drain depths: completion-only heuristics
    /// (HMCT, MCT, …) truncate, perturbation readers (MP, MSF, MNI)
    /// drain full-length through the shared prefix.
    #[test]
    fn stage2_fast_campaigns_bitwise_match_full_end_to_end() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        for kind in HeuristicKind::ALL {
            for selector in [
                cas_core::SelectorKind::Exhaustive,
                cas_core::SelectorKind::TopK { k: 1 },
                cas_core::SelectorKind::TopK { k: 64 },
                cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 3 },
            ] {
                for shards in [Sharding::Single, Sharding::Federated { shards: 4 }] {
                    let cfg = ExperimentConfig::paper(kind, 53)
                        .with_selector(selector)
                        .with_shards(shards);
                    assert_eq!(
                        cfg.stage2,
                        cas_core::Stage2Mode::Fast,
                        "fast drain engine is the default"
                    );
                    let fast = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                    let full = run_experiment(
                        cfg.with_stage2(cas_core::Stage2Mode::Full),
                        costs.clone(),
                        servers.clone(),
                        tasks.clone(),
                    );
                    assert_eq!(
                        fast, full,
                        "{kind:?}/{selector:?}/{shards:?} diverged between stage-2 engines"
                    );
                }
            }
        }
    }

    /// The two stage-2 engines stay bit-identical through churn and the
    /// rebalances it triggers, and the rebuilt blocks keep the configured
    /// engine: under `Full` the fast-path counters must stay zero even
    /// after blocks were rebuilt mid-campaign, while the default fast run
    /// of the same completion-only campaign truncates drains.
    #[test]
    fn stage2_engines_survive_churn_and_rebalance_bitwise() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 29)
            .with_shards(Sharding::Federated { shards: 3 })
            .with_churn(120.0, 30.0)
            .with_churn_seed(7);
        let run = |cfg: ExperimentConfig| {
            let world = GridWorld::new(cfg, costs.clone(), servers.clone(), tasks.clone());
            let mut sim = cas_sim::Simulation::new(world);
            sim.run_to_completion();
            let world = sim.into_world();
            let stats = world.agent().stage2_stats();
            (world.records().to_vec(), stats)
        };
        let (fast, fast_stats) = run(cfg);
        let (full, full_stats) = run(cfg.with_stage2(cas_core::Stage2Mode::Full));
        assert_eq!(fast, full, "stage-2 engines diverged under churn");
        // A rebalance rebuilds blocks with fresh HTMs (counters restart at
        // the replay), so only mode retention is asserted here: the full
        // engine never touches the prefix cursor, rebuilt blocks included.
        assert!(fast_stats.drains > 0, "{fast_stats:?}");
        assert_eq!(
            full_stats.prefix_hits, 0,
            "a rebuilt block fell back to the fast engine: {full_stats:?}"
        );
        assert_eq!(full_stats.truncated, 0, "full mode never truncates");
    }

    /// The fast engine's counters are live through the whole stack: a
    /// completion-only campaign (HMCT) truncates drains and resumes the
    /// shared prefix; a perturbation-reading campaign (MSF) never
    /// truncates but still shares the prefix.
    #[test]
    fn stage2_counters_are_live_end_to_end() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        let run = |kind: HeuristicKind| {
            let cfg = ExperimentConfig::paper(kind, 59);
            let world = GridWorld::new(cfg, costs.clone(), servers.clone(), tasks.clone());
            let mut sim = cas_sim::Simulation::new(world);
            sim.run_to_completion();
            sim.into_world().agent().stage2_stats()
        };
        let hmct = run(HeuristicKind::Hmct);
        assert!(hmct.drains > 0, "{hmct:?}");
        assert!(
            hmct.truncated > 0,
            "HMCT is completion-only; drains must truncate: {hmct:?}"
        );
        assert!(
            hmct.prefix_hits > 0,
            "repeat queries must resume the prefix: {hmct:?}"
        );
        let msf = run(HeuristicKind::Msf);
        assert_eq!(
            msf.truncated, 0,
            "MSF reads perturbations; no drain may truncate: {msf:?}"
        );
        assert!(msf.prefix_hits > 0, "{msf:?}");
    }

    /// The stage-2 parallel scatter, driven end to end through the
    /// router: a campaign with the pool arm forced **on** is record-equal
    /// to one with it forced **off**, wide exhaustive shortlists keeping
    /// the batch path busy. (CI runs this by name on a multi-core
    /// runner; on a single-core host the pool scope degenerates to the
    /// caller draining every job, which still exercises the scatter
    /// code path.)
    #[test]
    fn forced_parallel_stage2_campaign_matches_serial() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        let run = |force: bool| {
            let cfg = ExperimentConfig::paper(HeuristicKind::Msf, 31)
                .with_shards(Sharding::Federated { shards: 2 });
            let mut world = GridWorld::new(cfg, costs.clone(), servers.clone(), tasks.clone());
            world.agent_mut().set_parallel_stage2(Some(force));
            let mut sim = cas_sim::Simulation::new(world);
            sim.run_to_completion();
            sim.into_world().records().to_vec()
        };
        assert_eq!(
            run(true),
            run(false),
            "forced-parallel stage 2 diverged from forced-serial"
        );
    }

    /// Flat and BTree rankings stay bit-identical through the full
    /// lifecycle machinery: churn (crashes, repairs, retraction replay)
    /// plus the rebalances it triggers — the rebuilt blocks must keep
    /// the configured backend.
    #[test]
    fn flat_rankings_survive_churn_and_rebalance_bitwise() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 23)
            .with_shards(Sharding::Federated { shards: 3 })
            .with_churn(120.0, 30.0)
            .with_churn_seed(7);
        let flat = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        let btree = run_experiment(
            cfg.with_rankings(cas_platform::RankingsBackend::Btree),
            costs,
            servers,
            tasks,
        );
        assert_eq!(flat, btree, "rankings backends diverged under churn");
    }

    /// Aggregated load reports fire O(n_shards) kernel events per period
    /// instead of O(n_servers) — and, for a heuristic that never reads
    /// the reports, change nothing else about the run.
    #[test]
    fn aggregated_reports_fire_per_shard_not_per_server() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 11)
            .with_shards(Sharding::Federated { shards: 3 });
        let run = |cfg: ExperimentConfig| {
            let world = GridWorld::new(cfg, costs.clone(), servers.clone(), tasks.clone());
            let mut sim = cas_sim::Simulation::new(world);
            let _ = sim.run_to_completion();
            let world = sim.into_world();
            (world.records().to_vec(), world.report_events())
        };
        let (per_server_recs, per_server_events) = run(cfg);
        let (per_shard_recs, per_shard_events) = run(cfg.with_aggregated_reports(true));
        // HMCT never reads the load reports, so the whole run is
        // bit-identical — the only difference is kernel pressure.
        assert_eq!(per_server_recs, per_shard_recs);
        assert!(per_shard_events > 0, "aggregated reports must fire");
        // 3 shards over 6 servers, same period, same staggering, same
        // horizon: half the kernel events (± the tail-of-run partials).
        assert!(
            per_shard_events * 2 <= per_server_events + 6,
            "expected ~{}/2 aggregated report events, got {per_shard_events}",
            per_server_events
        );
        assert!(
            per_shard_events * 2 + 6 >= per_server_events,
            "aggregated mode fired implausibly few events: \
             {per_shard_events} vs {per_server_events} per-server"
        );
        // A report-reading heuristic still completes every task on the
        // aggregated schedule (its decisions may legitimately differ).
        let mct = ExperimentConfig::paper(HeuristicKind::Mct, 11)
            .with_shards(Sharding::Federated { shards: 3 })
            .with_aggregated_reports(true);
        let (recs, _) = run(mct);
        assert!(recs.iter().all(|r| r.is_completed()));
    }

    /// Retry exclusions must stay honoured through the federation: after
    /// a refusal the excluded server cannot reappear in any shard's
    /// shortlist, even when it is its shard's best.
    #[test]
    fn sharded_retry_respects_exclusions() {
        let mut costs = CostTable::new(2);
        costs.add_problem(
            cas_platform::Problem::new("big", 1.0, 1.0, 100.0),
            vec![
                Some(PhaseCosts::new(1.0, 10.0, 1.0)),
                Some(PhaseCosts::new(1.0, 40.0, 1.0)),
            ],
        );
        let servers = vec![
            ServerSpec::new("fast-tiny", 1000.0, 100.0, 20.0),
            ServerSpec::new("slow-big", 500.0, 2048.0, 1024.0),
        ];
        let mut cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1)
            .with_selector(cas_core::SelectorKind::TopK { k: 1 })
            .with_shards(Sharding::Federated { shards: 2 });
        cfg.memory = cas_platform::MemoryModel::default();
        cfg.fault_tolerance = FaultTolerance::RankedRetry { max_attempts: 4 };
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&[0.0, 0.5]));
        assert!(recs.iter().all(|r| r.is_completed()), "{recs:?}");
        let rescued = recs.iter().find(|r| r.attempts > 1).expect("one retry");
        assert_eq!(rescued.server, Some(ServerId(1)));
    }

    #[test]
    fn load_reports_influence_mct() {
        // With long report periods and no corrections the MCT would dogpile
        // the fast server; the assignment correction spreads tasks.
        let (costs, servers) = mini_setup();
        let mut cfg = ExperimentConfig::ideal(HeuristicKind::Mct, 2);
        cfg.load_report_period = 1e5; // reports effectively never arrive
        let arrivals: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let recs = run_experiment(cfg, costs, servers, mini_tasks(&arrivals));
        let on_slow = recs
            .iter()
            .filter(|r| r.server == Some(ServerId(1)))
            .count();
        assert!(
            on_slow > 0,
            "assignment-bump correction must steer some tasks to the slow server"
        );
    }

    /// Switching the churn machinery on with an infinite MTBF must be
    /// invisible: no fault process derives from the model, so every
    /// selector backend — sharded or not — produces records
    /// bit-identical to the frozen farm.
    #[test]
    fn infinite_mtbf_is_bitwise_identical_to_frozen_farm() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        for selector in [
            cas_core::SelectorKind::Exhaustive,
            cas_core::SelectorKind::TopK { k: 1 },
            cas_core::SelectorKind::TopK { k: 64 },
            cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 3 },
        ] {
            for shards in [Sharding::Single, Sharding::Federated { shards: 3 }] {
                let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 41)
                    .with_selector(selector)
                    .with_shards(shards);
                let frozen = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                let churned = run_experiment(
                    cfg.with_churn(f64::INFINITY, 60.0).with_churn_seed(99),
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                );
                assert_eq!(
                    frozen, churned,
                    "{selector:?}/{shards:?} diverged under mtbf = inf"
                );
            }
        }
    }

    /// Crash-retraction equivalence end to end: under the exhaustive
    /// selector, a sharded federation subjected to a fault schedule
    /// produces records bit-identical to the single-agent engine under
    /// the *same* schedule — retraction, backoff re-dispatch, budget
    /// drops and online rebalancing included. The fault schedule is a
    /// function of the churn seed alone, so both runs see the same one.
    #[test]
    fn churned_federation_matches_single_agent_under_same_faults() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        let base = ExperimentConfig::paper(HeuristicKind::Hmct, 9)
            .with_churn(60.0, 15.0)
            .with_churn_seed(3);
        let single = run_experiment(base, costs.clone(), servers.clone(), tasks.clone());
        for shards in [2, 3, 6] {
            let routed = run_experiment(
                base.with_shards(Sharding::Federated { shards }),
                costs.clone(),
                servers.clone(),
                tasks.clone(),
            );
            assert_eq!(single, routed, "diverged at {shards} shards under churn");
        }
    }

    /// A harsh fault schedule must leave no task unaccounted: every
    /// record ends terminal, the completed/dropped/failed partition
    /// sums to the campaign size, and the lifecycle counters agree
    /// with the records.
    #[test]
    fn churn_campaign_accounts_for_every_task() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(40);
        let n_tasks = tasks.len() as u64;
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 23)
            .with_shards(Sharding::Federated { shards: 3 })
            .with_churn(40.0, 20.0)
            .with_churn_seed(7);
        let world = GridWorld::new(cfg, costs, servers, tasks);
        let mut sim = cas_sim::Simulation::new(world);
        let _ = sim.run_to_completion();
        let world = sim.into_world();
        let stats = world.churn_stats();
        assert!(stats.crashes > 0, "schedule must crash servers: {stats:?}");
        let (mut completed, mut dropped, mut failed) = (0u64, 0u64, 0u64);
        for r in world.records() {
            match r.outcome {
                TaskOutcome::Completed { .. } => completed += 1,
                TaskOutcome::Dropped { .. } => dropped += 1,
                TaskOutcome::Failed => failed += 1,
                TaskOutcome::InFlight => panic!("task {:?} left in flight", r.task),
            }
        }
        assert_eq!(completed + dropped + failed, n_tasks);
        assert_eq!(dropped, stats.drops, "every drop carries a reason code");
        // Every retraction either re-dispatched or consumed the budget;
        // the requeue path may add re-dispatches of its own on top.
        assert!(
            stats.redispatches + stats.drops >= stats.retractions,
            "unaccounted retraction: {stats:?}"
        );
    }

    /// When repairs lag far behind failures, whole blocks go dark and
    /// the live-server count leaves the size band: the router must
    /// re-partition online — and the campaign must still account for
    /// every task afterwards.
    #[test]
    fn churn_triggers_online_rebalance() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(40);
        let n_tasks = tasks.len() as u64;
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 5)
            .with_shards(Sharding::Federated { shards: 3 })
            .with_churn(30.0, 90.0)
            .with_churn_seed(11);
        let world = GridWorld::new(cfg, costs, servers, tasks);
        let mut sim = cas_sim::Simulation::new(world);
        let _ = sim.run_to_completion();
        let world = sim.into_world();
        let stats = world.churn_stats();
        assert!(
            stats.rebalances > 0,
            "long repairs must empty a block and trigger a merge: {stats:?}"
        );
        let terminal = world
            .records()
            .iter()
            .filter(|r| !matches!(r.outcome, TaskOutcome::InFlight))
            .count() as u64;
        assert_eq!(terminal, n_tasks);
    }

    /// `run_experiment` with a provision schedule attached (the public
    /// helper takes none, to keep the common call sites lean).
    fn run_with_provisions(
        cfg: ExperimentConfig,
        costs: CostTable,
        servers: Vec<ServerSpec>,
        tasks: Vec<TaskInstance>,
        provisions: Vec<Provision>,
    ) -> GridWorld {
        let world = GridWorld::new(cfg, costs, servers, tasks).with_provisions(provisions);
        let mut sim = cas_sim::Simulation::new(world);
        let outcome = sim.run_to_completion();
        assert_eq!(outcome, cas_sim::engine::RunOutcome::Exhausted);
        let mut world = sim.into_world();
        assert_eq!(
            world.remaining(),
            0,
            "all tasks must reach a terminal state"
        );
        let simulated = world.agent.simulated_completions();
        for rec in &mut world.records {
            rec.predicted_completion = simulated.get(&rec.task).copied();
        }
        world
    }

    /// A server provisioned mid-campaign becomes eligible immediately:
    /// it wins decisions made after its admission (it is the cheapest
    /// machine on the farm) and never appears in decisions made before.
    #[test]
    fn provisioned_server_joins_mid_campaign_and_takes_work() {
        let (costs, servers) = mini_setup();
        let tasks = mini_tasks(&[0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0]);
        let cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1);
        let world = run_with_provisions(
            cfg,
            costs,
            servers,
            tasks,
            vec![Provision {
                at: t(5.0),
                spec: ServerSpec::new("joiner", 1000.0, 1024.0, 1024.0),
                column: vec![Some(PhaseCosts::new(1.0, 5.0, 1.0))],
            }],
        );
        assert_eq!(world.churn_stats().provisions, 1);
        assert_eq!(world.live_servers(), 3);
        let joiner = ServerId(2);
        let on_joiner: Vec<_> = world
            .records()
            .iter()
            .filter(|r| r.server == Some(joiner))
            .collect();
        assert!(
            !on_joiner.is_empty(),
            "the cheapest machine must win post-admission decisions"
        );
        assert!(
            on_joiner.iter().all(|r| r.arrival >= t(5.0)),
            "no task decided before admission may land on the newcomer"
        );
        assert!(world.records().iter().all(|r| r.is_completed()));
    }

    /// Provision-equivalence end to end: under the exhaustive selector a
    /// sharded federation given a provision schedule produces records
    /// bit-identical to the single-agent engine given the same schedule —
    /// the incremental shard join must be invisible to the decisions.
    #[test]
    fn provisioned_campaign_sharded_matches_single_agent() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        let provisions = vec![Provision {
            at: t(3.0),
            spec: ServerSpec::new("joiner", 1000.0, 1024.0, 1024.0),
            column: vec![
                Some(PhaseCosts::new(0.4, 6.0, 0.4)),
                Some(PhaseCosts::new(0.2, 8.0, 0.2)),
            ],
        }];
        let base = ExperimentConfig::paper(HeuristicKind::Hmct, 13);
        let single = run_with_provisions(
            base,
            costs.clone(),
            servers.clone(),
            tasks.clone(),
            provisions.clone(),
        );
        assert_eq!(single.churn_stats().provisions, 1);
        assert!(
            single
                .records()
                .iter()
                .any(|r| r.server == Some(ServerId(6))),
            "the provisioned server must actually receive work"
        );
        for shards in [2, 3, 6] {
            let routed = run_with_provisions(
                base.with_shards(Sharding::Federated { shards }),
                costs.clone(),
                servers.clone(),
                tasks.clone(),
                provisions.clone(),
            );
            assert_eq!(
                single.records(),
                routed.records(),
                "provision diverged at {shards} shards"
            );
        }
    }

    /// A farm big enough for `--shards auto` to produce a real federation
    /// (1300 servers → 3 shards under the 640-servers-per-shard target).
    fn farm_setup(n: usize) -> (CostTable, Vec<ServerSpec>) {
        let mut costs = CostTable::new(n);
        costs.add_problem(
            Problem::new("p0", 1.0, 0.5, 0.0),
            (0..n)
                .map(|s| Some(PhaseCosts::new(0.5, 6.0 + (s % 37) as f64, 0.5)))
                .collect(),
        );
        costs.add_problem(
            Problem::new("p1", 1.0, 0.5, 0.0),
            (0..n)
                .map(|s| (s % 3 == 0).then(|| PhaseCosts::new(0.3, 15.0 + (s % 23) as f64, 0.3)))
                .collect(),
        );
        let servers = (0..n)
            .map(|s| {
                ServerSpec::new(
                    format!("s{s}"),
                    400.0 + (s % 100) as f64 * 10.0,
                    1024.0,
                    1024.0,
                )
            })
            .collect();
        (costs, servers)
    }

    /// The group-walk acceptance property end to end: on a farm where
    /// `auto` resolves to a real federation, campaigns run with the
    /// two-level tree active (`auto:1`, `auto:2`) are record-identical
    /// to the flat lazy walk (default fan-out puts all 3 shards in one
    /// group) — the tree may only prune group visits, never decisions.
    #[test]
    fn grouped_auto_campaigns_bitwise_match_flat_walk() {
        let (costs, servers) = farm_setup(1300);
        let tasks = six_tasks(40);
        for selector in [
            cas_core::SelectorKind::TopK { k: 2 },
            cas_core::SelectorKind::Adaptive { k_min: 1, k_max: 3 },
        ] {
            let base = ExperimentConfig::paper(HeuristicKind::Hmct, 31).with_selector(selector);
            let flat = run_experiment(
                base.with_shards(Sharding::AUTO),
                costs.clone(),
                servers.clone(),
                tasks.clone(),
            );
            for group_size in [1, 2] {
                let grouped = run_experiment(
                    base.with_shards(Sharding::Auto {
                        group_size: Some(group_size),
                    }),
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                );
                assert_eq!(
                    flat, grouped,
                    "{selector:?} diverged between flat walk and auto:{group_size}"
                );
            }
        }
    }

    /// The `auto:GROUPSIZE` override reaches the router: fan-out 1 on a
    /// 3-shard farm yields 3 singleton groups, the campaign's decisions
    /// drive the group-level walk (both counters live), and the per-level
    /// accounting invariant holds.
    #[test]
    fn auto_group_size_override_drives_group_walk() {
        let (costs, servers) = farm_setup(1300);
        let tasks = six_tasks(40);
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 31)
            .with_selector(cas_core::SelectorKind::TopK { k: 2 })
            .with_shards(Sharding::Auto {
                group_size: Some(1),
            });
        let world = GridWorld::new(cfg, costs, servers, tasks);
        assert_eq!(world.agent().tree().n_groups(), 3);
        let mut sim = cas_sim::Simulation::new(world);
        let _ = sim.run_to_completion();
        let world = sim.into_world();
        let stats = world.agent().skyline_stats();
        assert!(stats.decisions > 0);
        assert!(stats.group_visits > 0, "group walk never ran: {stats:?}");
        assert_eq!(
            stats.group_visits + stats.group_skips,
            stats.decisions * 3,
            "every decision must account for every group: {stats:?}"
        );
        assert!(world.records().iter().all(|r| r.is_completed()));
    }

    /// Runs a world with user classes attached and returns it.
    fn run_with_users(
        cfg: ExperimentConfig,
        costs: CostTable,
        servers: Vec<ServerSpec>,
        tasks: Vec<TaskInstance>,
        users: Vec<u32>,
    ) -> GridWorld {
        let world = GridWorld::new(cfg, costs, servers, tasks).with_users(users);
        let mut sim = cas_sim::Simulation::new(world);
        let outcome = sim.run_to_completion();
        assert_eq!(outcome, cas_sim::engine::RunOutcome::Exhausted);
        let world = sim.into_world();
        assert_eq!(world.remaining(), 0, "every task must end terminal");
        world
    }

    /// An uncontended admission gate (capacity ≥ campaign size) must be
    /// bitwise invisible: every submission admits instantly, so the
    /// event sequence — and therefore every record — matches the
    /// disabled gate across selectors and sharding modes.
    #[test]
    fn uncontended_admission_is_bitwise_invisible() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(24);
        for selector in [
            cas_core::SelectorKind::Exhaustive,
            cas_core::SelectorKind::TopK { k: 2 },
        ] {
            for shards in [Sharding::Single, Sharding::Federated { shards: 3 }] {
                let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 41)
                    .with_selector(selector)
                    .with_shards(shards);
                let off = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
                let on = run_experiment(
                    cfg.with_admission(10_000, 16, 60.0),
                    costs.clone(),
                    servers.clone(),
                    tasks.clone(),
                );
                assert_eq!(
                    off, on,
                    "{selector:?}/{shards:?} diverged under an idle gate"
                );
            }
        }
    }

    /// Crest overload against a tight gate: a burst far beyond capacity
    /// must shed — every shed carries `AdmissionDeadline` — while the
    /// terminal accounting stays exact and the counters balance
    /// (entries = exits, peaks bounded by the knobs).
    #[test]
    fn admission_crest_overload_sheds_and_accounts() {
        let (costs, servers) = mini_setup();
        let arrivals: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
        let tasks = mini_tasks(&arrivals);
        let n = tasks.len();
        let cfg = ExperimentConfig::ideal(HeuristicKind::Hmct, 1).with_admission(1, 2, 5.0);
        let world = run_with_users(cfg, costs, servers, tasks, vec![0; n]);
        let adm = world.admission_stats();
        let (mut completed, mut shed) = (0usize, 0usize);
        for r in world.records() {
            match r.outcome {
                TaskOutcome::Completed { .. } => completed += 1,
                TaskOutcome::Dropped {
                    reason: DropReason::AdmissionDeadline,
                } => shed += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(completed + shed, n);
        assert!(shed > 0, "a 0.5 s burst must overwhelm capacity 1");
        assert_eq!(shed as u64, adm.shed_deadline + adm.shed_overflow);
        assert!(adm.shed_deadline > 0, "5 s deadlines must expire");
        assert!(adm.shed_overflow > 0, "a 2-slot buffer must overflow");
        assert_eq!(adm.buffered, adm.dequeued + adm.shed_deadline);
        assert_eq!(adm.peak_admitted, 1);
        assert!(adm.peak_buffered <= 2);
        // The SLO surface is live: one class, a real drop rate, real
        // buffered time, and stretch percentiles from the completions.
        let slo =
            cas_metrics::per_class_slo(world.records(), world.users(), world.admission_waits());
        assert_eq!(slo.len(), 1);
        assert_eq!(slo[0].tasks, n);
        assert!(slo[0].drop_rate_pct > 0.0);
        assert!(slo[0].mean_buffered_s > 0.0);
        assert!(slo[0].p50_stretch.is_some() && slo[0].p99_stretch.is_some());
    }

    /// The fair dequeue is round-robin across user classes: a class
    /// that floods the buffer cannot starve a later, smaller class —
    /// the small class's tasks overtake the flood's tail.
    #[test]
    fn admission_fair_dequeue_serves_classes_round_robin() {
        let (costs, servers) = mini_setup();
        // Class 0 floods four tasks at t = 0; class 1 submits two just
        // after. Capacity 1 serialises everything through the buffer.
        let tasks = mini_tasks(&[0.0, 0.0, 0.0, 0.0, 0.01, 0.01]);
        let users = vec![0, 0, 0, 0, 1, 1];
        let cfg =
            ExperimentConfig::ideal(HeuristicKind::Hmct, 1).with_admission(1, 8, f64::INFINITY);
        let world = run_with_users(cfg, costs, servers, tasks, users);
        assert!(world.records().iter().all(|r| r.is_completed()));
        let finished = |i: usize| world.records()[i].finished().expect("completed");
        // Round-robin: class 1's last task beats class 0's last; a
        // global FIFO would drain the flood first.
        assert!(
            finished(5) < finished(3),
            "class 1 starved: {:?} vs {:?}",
            finished(5),
            finished(3)
        );
        let adm = world.admission_stats();
        assert_eq!(adm.buffered, adm.dequeued);
        assert_eq!(adm.shed_deadline + adm.shed_overflow, 0);
    }

    /// The gate sits above the shard router, so backpressure must not
    /// perturb the federation equivalence: same records, sharded or
    /// not, under a contended gate.
    #[test]
    fn admission_sharded_matches_single() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(30);
        let base = ExperimentConfig::paper(HeuristicKind::Hmct, 9).with_admission(2, 4, 8.0);
        let single = run_experiment(base, costs.clone(), servers.clone(), tasks.clone());
        assert!(
            single.iter().any(|r| matches!(
                r.outcome,
                TaskOutcome::Dropped {
                    reason: DropReason::AdmissionDeadline
                }
            )),
            "the gate must actually bind for this to test anything"
        );
        for shards in [2, 3, 6] {
            let routed = run_experiment(
                base.with_shards(Sharding::Federated { shards }),
                costs.clone(),
                servers.clone(),
                tasks.clone(),
            );
            assert_eq!(single, routed, "diverged at {shards} shards under the gate");
        }
    }

    /// Churn × backpressure: crash-retracted tasks re-enter through the
    /// bounded buffer — each retraction counted exactly once in
    /// `ChurnStats::redispatches` (the dequeue adds nothing) — and the
    /// terminal accounting of a saturated gate under a harsh fault
    /// schedule stays exact, with churn drops and admission sheds
    /// partitioning the dropped records by reason.
    #[test]
    fn churn_with_backpressure_accounts_and_reenters_once() {
        let (costs, servers) = six_setup();
        let tasks = six_tasks(40);
        let n_tasks = tasks.len() as u64;
        let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 23)
            .with_shards(Sharding::Federated { shards: 3 })
            .with_churn(40.0, 20.0)
            .with_churn_seed(7)
            .with_admission(3, 4, 30.0);
        let world = run_with_users(cfg, costs, servers, tasks, vec![0; 40]);
        let stats = world.churn_stats();
        let adm = world.admission_stats();
        assert!(stats.crashes > 0, "schedule must crash servers: {stats:?}");
        assert!(
            stats.retractions > 0,
            "crashes must retract work: {stats:?}"
        );
        assert!(adm.buffered > 0, "the gate must saturate: {adm:?}");
        let (mut completed, mut churn_drops, mut admission_sheds, mut budget_drops, mut failed) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for r in world.records() {
            match r.outcome {
                TaskOutcome::Completed { .. } => completed += 1,
                TaskOutcome::Dropped {
                    reason: DropReason::AdmissionDeadline,
                } => admission_sheds += 1,
                TaskOutcome::Dropped {
                    reason: DropReason::RedispatchBudget,
                } => {
                    churn_drops += 1;
                    budget_drops += 1;
                }
                TaskOutcome::Dropped { .. } => churn_drops += 1,
                TaskOutcome::Failed => failed += 1,
                TaskOutcome::InFlight => panic!("task {:?} left in flight", r.task),
            }
        }
        assert_eq!(completed + churn_drops + admission_sheds + failed, n_tasks);
        assert_eq!(churn_drops, stats.drops, "churn drops carry churn reasons");
        assert_eq!(admission_sheds, adm.shed_deadline + adm.shed_overflow);
        // Every retraction re-entered the buffer exactly once or spent
        // its budget — nothing double-counted, nothing lost.
        assert_eq!(
            adm.reentries + budget_drops,
            stats.retractions,
            "retraction↔re-entry bijection broke: {stats:?} {adm:?}"
        );
        assert!(
            stats.redispatches >= adm.reentries,
            "each re-entry was counted once as a redispatch"
        );
        assert_eq!(adm.buffered, adm.dequeued + adm.shed_deadline);
    }
}

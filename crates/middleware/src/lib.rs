//! # cas-middleware — the client-agent-server system, simulated end to end
//!
//! This crate is the substitute for the paper's real NetSolve deployment
//! (see DESIGN.md §2). It wires the platform substrate, the HTM and a
//! heuristic into one discrete-event world:
//!
//! * **clients** submit the metatask's requests at their arrival dates and
//!   retry on rejection (NetSolve's fault tolerance);
//! * the **agent** keeps the information model (static costs + corrected
//!   load reports) and the HTM, and runs the configured heuristic for every
//!   request;
//! * **servers** execute tasks through the three phases on fair-shared
//!   resources, reserve and release memory, thrash and collapse, run load
//!   monitors and send periodic reports.
//!
//! The ground truth deliberately differs from the agent's model: CPU and
//! link speeds carry multiplicative log-normal noise redrawn periodically,
//! and the agent's load picture is stale between reports. The HTM's ≈3 %
//! prediction error (Table 1) *emerges* from that asymmetry rather than
//! being injected.
//!
//! [`runner`] fans replications out over the process-wide work-stealing
//! pool (`cas_sim::pool`), reducing results in replication order — the
//! experiments of Tables 5–8 run dozens of seed × heuristic combinations
//! without per-call thread spawning.

pub mod config;
pub mod engine;
pub mod event;
pub mod harness;
pub mod runner;
pub mod shard;
pub mod validate;

pub use config::{ExperimentConfig, FaultTolerance, Sharding};
pub use engine::{
    run_experiment, run_experiment_with_users, AdmissionStats, ChurnStats, GridWorld,
};
pub use event::GridEvent;
pub use harness::{DecisionAgent, DiffHarness, DiffSession, Op, SingleAgentReference};
pub use runner::{
    run_heuristic_matrix, run_replications, run_replications_sequential, MatrixResult,
};
pub use shard::{AgentRouter, ShardEngine, SkylineStats};
pub use validate::{validation_report, ValidationRow};

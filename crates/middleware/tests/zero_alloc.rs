//! Proof that the steady-state decision loop performs no heap
//! allocation.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms the router up (growing every reusable buffer — shortlist
//! scratch, decision memo, drain scratch, perturbation buffers — to its
//! steady-state footprint), then arms the counter around a measured run
//! of pure decisions and requires the count to be exactly zero. The
//! counter is thread-local and const-initialised, so accounting itself
//! never allocates and parallel test threads cannot pollute the
//! measurement.

use cas_core::heuristics::HeuristicKind;
use cas_core::{SelectorKind, SyncPolicy};
use cas_middleware::shard::{AgentRouter, DecisionInputs};
use cas_platform::{
    CostTable, IndexScoring, LoadReport, PhaseCosts, Problem, ProblemId, ServerId, TaskId,
    TaskInstance,
};
use cas_sim::{RngStream, SimTime, StreamKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers every operation to `System`; the bookkeeping reads a
// const-initialised thread-local, which itself never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn count() {
    // `try_with`: TLS may already be torn down during thread exit.
    let _ = ARMED.try_with(|armed| {
        if armed.get() {
            let _ = ALLOCS.try_with(|n| n.set(n.get() + 1));
        }
    });
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed and returns how many
/// allocations (including reallocations) it performed on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|n| n.set(0));
    ARMED.with(|armed| armed.set(true));
    f();
    ARMED.with(|armed| armed.set(false));
    ALLOCS.with(|n| n.get())
}

/// A 12-server farm, one problem solvable everywhere with spread costs.
fn farm() -> CostTable {
    let mut costs = CostTable::new(12);
    costs.add_problem(
        Problem::new("p", 1.0, 0.5, 0.0),
        (0..12)
            .map(|s| Some(PhaseCosts::new(0.4, 10.0 + 3.0 * s as f64, 0.4)))
            .collect(),
    );
    costs
}

fn task(id: u64, at: f64) -> TaskInstance {
    TaskInstance::new(TaskId(id), ProblemId(0), SimTime::from_secs(at))
}

/// The steady-state decision loop — stage-1 shortlist walk, stage-2
/// what-if queries through the memo, argmin — allocates nothing once
/// its reusable buffers are warm.
#[test]
fn steady_state_decisions_allocate_nothing() {
    let costs = farm();
    let reports: Vec<LoadReport> = (0..12).map(|i| LoadReport::initial(ServerId(i))).collect();
    let server_mem = vec![f64::MAX; 12];
    let mut router = AgentRouter::new(
        &costs,
        None,
        SelectorKind::Exhaustive,
        IndexScoring::RemainingWork,
        SyncPolicy::None,
    );
    let mut heuristic = HeuristicKind::Hmct.build();
    let mut tie_rng = RngStream::derive(11, StreamKind::TieBreak);
    let admit = |_: ServerId| true;

    // Load the farm so predictions carry real perturbation lists (their
    // buffers must be grown by the warmup, not the measured run): a few
    // long-running commits per server that stay active throughout.
    for s in 0..12u32 {
        for k in 0..4u64 {
            let t = task(100_000 + u64::from(s) * 8 + k, 0.0);
            router.on_commit(SimTime::ZERO, ServerId(s), &t, 40.0);
        }
    }

    let mut decide = |router: &mut AgentRouter,
                      heuristic: &mut dyn cas_core::heuristics::Heuristic,
                      id: u64,
                      at: f64| {
        let t = task(id, at);
        router.decide(
            DecisionInputs {
                now: t.arrival,
                task: t,
                costs: &costs,
                reports: &reports,
                server_mem: &server_mem,
                admit: &admit,
            },
            heuristic,
            &mut tie_rng,
        )
    };

    // Warmup: grow every scratch buffer well past the measured regime.
    for i in 0..3000u64 {
        decide(&mut router, heuristic.as_mut(), i, 0.001 * i as f64);
    }

    // Measured: pure decisions, zero allocations allowed.
    let allocs = allocations_in(|| {
        for i in 3000..3300u64 {
            let pick = decide(&mut router, heuristic.as_mut(), i, 3.0 + 0.001 * i as f64);
            assert!(pick.is_some(), "decision {i} found no candidate");
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state decision loop must not allocate (saw {allocs} allocations over 300 decisions)"
    );

    // The commit path's completion query shares the router's scratch
    // prediction: allocation-free as well once warm.
    let warm = task(5_000, 10.0);
    router.predict_completion(SimTime::from_secs(10.0), ServerId(0), &warm);
    let allocs = allocations_in(|| {
        for i in 0..100u64 {
            let t = task(6_000 + i, 10.0);
            let c = router.predict_completion(SimTime::from_secs(10.0), ServerId(0), &t);
            assert!(c.is_some());
        }
    });
    assert_eq!(
        allocs, 0,
        "commit-path completion queries must not allocate"
    );
}

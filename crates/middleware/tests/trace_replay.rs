//! End-to-end trace replay: the checked-in golden trace through the
//! full pipeline — CSV ingestion, demand-ladder compilation, the
//! admission gate, per-user-class SLOs — plus the record-identity
//! guarantees the trace path rides on (determinism, sharded ≡ single,
//! trace ≡ metataskspec when the gate is off and rates are light).

use cas_core::heuristics::HeuristicKind;
use cas_metrics::{per_class_slo, DropReason, TaskOutcome, TaskRecord};
use cas_middleware::engine::{run_experiment_with_users, AdmissionStats};
use cas_middleware::{run_experiment, ExperimentConfig, Sharding};
use cas_workload::trace::TraceWorkload;
use cas_workload::{CsvTrace, MetataskSpec};
use std::fmt::Write as _;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../workload/fixtures/golden_trace.csv"
);

fn golden_run(cfg: ExperimentConfig) -> (Vec<TaskRecord>, Vec<u32>, AdmissionStats, Vec<f64>) {
    let text = std::fs::read_to_string(GOLDEN).expect("golden fixture is checked in");
    let mut trace = CsvTrace::parse(&text).expect("golden fixture parses");
    let c = TraceWorkload {
        n_servers: 3,
        ..TraceWorkload::default()
    }
    .compile(&mut trace, cfg.seed)
    .expect("golden fixture compiles");
    let users = c.users.clone();
    let (records, stats, waits) =
        run_experiment_with_users(cfg, c.costs, c.servers, c.tasks, c.users);
    (records, users, stats, waits)
}

/// The golden trace replays end to end under a tight admission gate:
/// the class-1 crest saturates it, every task still ends terminal, and
/// the per-class SLO report carries stretch percentiles, buffered time
/// and a real drop rate for the crest class.
#[test]
fn golden_trace_replays_with_slos_under_backpressure() {
    let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 17).with_admission(2, 4, 25.0);
    let (records, users, stats, waits) = golden_run(cfg);
    assert_eq!(records.len(), 36);
    let terminal = records
        .iter()
        .all(|r| !matches!(r.outcome, TaskOutcome::InFlight));
    assert!(terminal, "every task must end terminal under the crest");
    assert!(stats.peak_buffered > 0, "the crest must buffer: {stats:?}");
    let sheds = records
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                TaskOutcome::Dropped {
                    reason: DropReason::AdmissionDeadline
                }
            )
        })
        .count() as u64;
    assert_eq!(sheds, stats.shed_deadline + stats.shed_overflow);
    let slo = per_class_slo(&records, &users, &waits);
    assert_eq!(slo.len(), 3, "three user classes in the fixture");
    for class in &slo {
        assert!(class.tasks > 0);
        assert!(
            class.p50_stretch.is_some() && class.p99_stretch.is_some(),
            "class {} must complete enough for percentiles",
            class.user
        );
    }
    let crest = &slo[1];
    assert_eq!(crest.user, 1);
    assert!(
        crest.mean_buffered_s > 0.0,
        "the burst class must have waited: {crest:?}"
    );
}

/// Replaying the same trace with the same seed is bit-identical —
/// records, stats and waits — and the shard federation changes nothing.
#[test]
fn golden_trace_replay_is_deterministic_and_shard_invariant() {
    let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 17).with_admission(2, 4, 25.0);
    let a = golden_run(cfg);
    let b = golden_run(cfg);
    assert_eq!(a.0, b.0, "records must replay bit-identically");
    assert_eq!(a.2, b.2, "admission stats must replay bit-identically");
    assert_eq!(a.3, b.3, "buffered times must replay bit-identically");
    let sharded = golden_run(cfg.with_shards(Sharding::Federated { shards: 3 }));
    assert_eq!(a.0, sharded.0, "sharded replay diverged from single");
    assert_eq!(a.2, sharded.2);
}

/// With the gate off and arrival rates below capacity, the trace path
/// is record-identical to the equivalent `MetataskSpec` run on the same
/// farm: ingesting a generated metatask as a CSV trace changes nothing
/// end to end.
#[test]
fn light_trace_is_record_identical_to_metataskspec_run() {
    let seed = 42;
    let ms = MetataskSpec {
        n_tasks: 60,
        mean_gap: 25.0,
        gaps: cas_workload::GapDistribution::Exponential,
        n_problems: 3,
    };
    let tasks = ms.generate(seed);
    let ladder = [15.0, 26.0, 45.0];
    let mut csv = String::from("arrival_s,user,duration_s\n");
    for t in &tasks {
        writeln!(
            csv,
            "{:?},0,{:?}",
            t.arrival.as_secs(),
            ladder[t.problem.index()]
        )
        .unwrap();
    }
    let mut trace = CsvTrace::parse(&csv).unwrap();
    let c = TraceWorkload::default().compile(&mut trace, seed).unwrap();
    let cfg = ExperimentConfig::paper(HeuristicKind::Hmct, 11);
    assert!(!cfg.admission_enabled());
    let direct = run_experiment(cfg, c.costs.clone(), c.servers.clone(), tasks);
    let (traced, stats, waits) =
        run_experiment_with_users(cfg, c.costs, c.servers, c.tasks, c.users);
    assert_eq!(direct, traced, "trace path perturbed the records");
    assert_eq!(stats, AdmissionStats::default(), "gate off ⇒ zero counters");
    assert!(waits.is_empty(), "gate off ⇒ no buffered time surface");
}

//! Cross-crate validation of the Historical Trace Manager against the
//! ground-truth engine — the Table 1 property, plus property-based checks
//! that the agent's model and the platform's execution agree exactly when
//! their information coincides.

use casgrid::middleware::validate::{mean_error_pct, rows_from_records};
use casgrid::prelude::*;
use proptest::prelude::*;

fn run_ideal(kind: HeuristicKind, n: usize, gap: f64, seed: u64) -> Vec<TaskRecord> {
    let costs = casgrid::workload::matmul::cost_table();
    let servers = casgrid::workload::testbed::set1_servers();
    let tasks = MetataskSpec {
        n_tasks: n,
        ..MetataskSpec::paper(gap)
    }
    .generate(seed);
    run_experiment(ExperimentConfig::ideal(kind, seed), costs, servers, tasks)
}

/// In the noise-free environment the HTM *is* the ground truth: simulated
/// and real completion dates agree to float tolerance for every task, for
/// every HTM heuristic.
#[test]
fn htm_exact_in_ideal_environment() {
    for kind in [HeuristicKind::Hmct, HeuristicKind::Mp, HeuristicKind::Msf] {
        let recs = run_ideal(kind, 120, 15.0, 11);
        let rows = rows_from_records(&recs);
        assert_eq!(rows.len(), 120, "{kind:?}: all tasks validated");
        let mean = mean_error_pct(&rows);
        assert!(mean < 1e-6, "{kind:?}: mean error {mean} should be ~0");
    }
}

/// The sharded twin of the Table 1 property: routed through a 4-shard
/// federation (per-shard HTMs, skyline merge on), the model is still
/// exact in the ideal environment — and the records match the unsharded
/// run bit for bit under the paper's exhaustive selector.
#[test]
fn htm_exact_in_ideal_environment_sharded() {
    let costs = casgrid::workload::matmul::cost_table();
    let servers = casgrid::workload::testbed::set1_servers();
    let tasks = MetataskSpec {
        n_tasks: 120,
        ..MetataskSpec::paper(15.0)
    }
    .generate(11);
    let single = run_experiment(
        ExperimentConfig::ideal(HeuristicKind::Msf, 11),
        costs.clone(),
        servers.clone(),
        tasks.clone(),
    );
    let cfg = ExperimentConfig::ideal(HeuristicKind::Msf, 11)
        .with_shards(Sharding::Federated { shards: 4 });
    let recs = run_experiment(cfg, costs, servers, tasks);
    assert_eq!(recs, single, "federation diverged from the single agent");
    let rows = rows_from_records(&recs);
    assert_eq!(rows.len(), 120);
    let mean = mean_error_pct(&rows);
    assert!(mean < 1e-6, "sharded mean error {mean} should be ~0");
}

/// With the paper-level 3 % speed noise, the mean prediction error stays
/// in the single digits (Table 1 reports < 3 % on a lightly loaded server;
/// a fully loaded metatask compounds drift, so we assert a looser bound
/// and that error is strictly positive).
#[test]
fn htm_error_small_under_paper_noise() {
    let costs = casgrid::workload::matmul::cost_table();
    let servers = casgrid::workload::testbed::set1_servers();
    let tasks = MetataskSpec {
        n_tasks: 150,
        ..MetataskSpec::paper(20.0)
    }
    .generate(13);
    let recs = run_experiment(
        ExperimentConfig::paper(HeuristicKind::Hmct, 13),
        costs,
        servers,
        tasks,
    );
    let rows = rows_from_records(&recs);
    let mean = mean_error_pct(&rows);
    assert!(mean > 0.0);
    assert!(mean < 10.0, "mean error {mean}% too large for sigma=0.03");
}

/// Force-finish synchronisation never loses tasks and keeps predictions
/// sane under heavy noise.
#[test]
fn sync_policy_stays_consistent() {
    let costs = casgrid::workload::wastecpu::cost_table();
    let servers = casgrid::workload::testbed::set2_servers();
    let tasks = MetataskSpec {
        n_tasks: 150,
        ..MetataskSpec::paper(15.0)
    }
    .generate(17);
    let mut cfg = ExperimentConfig::paper(HeuristicKind::Msf, 17);
    cfg.noise_sigma = 0.15;
    cfg.sync = SyncPolicy::ForceFinish;
    let recs = run_experiment(cfg, costs, servers, tasks);
    assert_eq!(MetricSet::compute(&recs).completed, 150);
    // Every completed task has a simulated completion date.
    assert!(recs.iter().all(|r| r.predicted_completion.is_some()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ideal-mode exactness holds across random workload shapes, not just
    /// the fixed fixtures above.
    #[test]
    fn htm_exact_for_random_workloads(
        n in 20usize..80,
        gap in 5.0f64..40.0,
        seed in 0u64..1000,
    ) {
        let recs = run_ideal(HeuristicKind::Msf, n, gap, seed);
        let rows = rows_from_records(&recs);
        prop_assert_eq!(rows.len(), n);
        let mean = mean_error_pct(&rows);
        prop_assert!(mean < 1e-6, "mean error {} at n={} gap={} seed={}", mean, n, gap, seed);
    }

    /// Every task completes and flow times are positive under arbitrary
    /// small workloads and any heuristic (no deadlocks, no lost events).
    #[test]
    fn engine_liveness(
        n in 1usize..60,
        gap in 1.0f64..30.0,
        seed in 0u64..1000,
        kind_idx in 0usize..HeuristicKind::ALL.len(),
    ) {
        let kind = HeuristicKind::ALL[kind_idx];
        let costs = casgrid::workload::wastecpu::cost_table();
        let servers = casgrid::workload::testbed::set2_servers();
        let tasks = MetataskSpec { n_tasks: n, ..MetataskSpec::paper(gap) }.generate(seed);
        let recs = run_experiment(
            ExperimentConfig::paper(kind, seed),
            costs, servers, tasks,
        );
        prop_assert_eq!(recs.len(), n);
        for r in &recs {
            prop_assert!(r.is_completed(), "{:?} lost {}", kind, r.task);
            prop_assert!(r.flow().unwrap() > 0.0);
        }
    }
}

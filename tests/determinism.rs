//! Reproducibility guarantees across the whole stack.

use casgrid::prelude::*;

fn setup(n: usize, seed: u64) -> (CostTable, Vec<ServerSpec>, Vec<TaskInstance>) {
    let costs = casgrid::workload::wastecpu::cost_table();
    let servers = casgrid::workload::testbed::set2_servers();
    let tasks = MetataskSpec {
        n_tasks: n,
        ..MetataskSpec::paper(15.0)
    }
    .generate(seed);
    (costs, servers, tasks)
}

/// Bit-identical records for identical (seed, workload, heuristic).
#[test]
fn identical_runs_are_bit_identical() {
    let (costs, servers, tasks) = setup(150, 1);
    for kind in HeuristicKind::ALL {
        let cfg = ExperimentConfig::paper(kind, 99);
        let a = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        let b = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        assert_eq!(a, b, "{kind:?} not deterministic");
    }
}

/// The workload is identical across heuristics (paired comparison): task
/// ids, problems and arrivals agree record-by-record.
#[test]
fn workload_identical_across_heuristics() {
    let (costs, servers, tasks) = setup(100, 2);
    let runs: Vec<Vec<TaskRecord>> = HeuristicKind::PAPER
        .iter()
        .map(|&k| {
            run_experiment(
                ExperimentConfig::paper(k, 5),
                costs.clone(),
                servers.clone(),
                tasks.clone(),
            )
        })
        .collect();
    for pair in runs.windows(2) {
        for (a, b) in pair[0].iter().zip(&pair[1]) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.problem, b.problem);
            assert_eq!(a.arrival, b.arrival);
        }
    }
}

/// The sharded twin of the bit-identity guarantee: a federated run is
/// deterministic across repeats, and — under the paper's exhaustive
/// selector — bit-identical to the single-agent run it federates, with
/// the skyline merge on or off. A router regression can no longer hide
/// behind the single-agent path.
#[test]
fn sharded_runs_are_bit_identical_and_match_single() {
    let (costs, servers, tasks) = setup(120, 6);
    for kind in [HeuristicKind::Msf, HeuristicKind::Mct] {
        let single = run_experiment(
            ExperimentConfig::paper(kind, 99),
            costs.clone(),
            servers.clone(),
            tasks.clone(),
        );
        let cfg = ExperimentConfig::paper(kind, 99).with_shards(Sharding::Federated { shards: 3 });
        let a = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        let b = run_experiment(cfg, costs.clone(), servers.clone(), tasks.clone());
        assert_eq!(a, b, "{kind:?} sharded run not deterministic");
        assert_eq!(
            a, single,
            "{kind:?} federation diverged from the single agent"
        );
        let eager = run_experiment(
            cfg.with_skyline(false),
            costs.clone(),
            servers.clone(),
            tasks.clone(),
        );
        assert_eq!(a, eager, "{kind:?} skyline on/off diverged");
    }
}

/// Different root seeds change ground-truth noise, hence completions.
#[test]
fn different_seeds_differ() {
    let (costs, servers, tasks) = setup(100, 3);
    let a = run_experiment(
        ExperimentConfig::paper(HeuristicKind::Msf, 1),
        costs.clone(),
        servers.clone(),
        tasks.clone(),
    );
    let b = run_experiment(
        ExperimentConfig::paper(HeuristicKind::Msf, 2),
        costs,
        servers,
        tasks,
    );
    assert_ne!(a, b);
}

/// The pooled runner yields exactly the sequential results — parallelism
/// is invisible in the records.
#[test]
fn runner_parallelism_is_invisible() {
    let (costs, servers, tasks) = setup(80, 4);
    let workloads: Vec<_> = (0..6).map(|_| tasks.clone()).collect();
    let cfg = ExperimentConfig::paper(HeuristicKind::Mp, 17);
    let seq = run_replications_sequential(cfg, &costs, &servers, &workloads);
    for round in 0..3 {
        let pooled = run_replications(cfg, &costs, &servers, &workloads);
        assert_eq!(seq, pooled, "round = {round}");
    }
}

/// Metatask generation is stable across calls and sensitive to every knob.
#[test]
fn metatask_generation_stability() {
    let base = MetataskSpec::paper(20.0);
    assert_eq!(base.generate(9), base.generate(9));
    let longer = MetataskSpec {
        n_tasks: 501,
        ..base
    };
    assert_eq!(longer.generate(9).len(), 501);
    let poisson = MetataskSpec {
        gaps: GapDistribution::Poisson,
        ..base
    };
    assert_ne!(base.generate(9), poisson.generate(9));
}

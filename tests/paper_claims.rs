//! End-to-end tests of the paper's headline claims (§5.3, §7), on reduced
//! metatasks so the suite stays fast in debug builds.
//!
//! These are *shape* assertions — orderings and factors, not absolute
//! numbers — mirroring what EXPERIMENTS.md records for the full-size runs.

use casgrid::prelude::*;

fn wastecpu_run(kind: HeuristicKind, gap: f64, n: usize, seed: u64) -> Vec<TaskRecord> {
    let costs = casgrid::workload::wastecpu::cost_table();
    let servers = casgrid::workload::testbed::set2_servers();
    let tasks = MetataskSpec {
        n_tasks: n,
        ..MetataskSpec::paper(gap)
    }
    .generate(seed);
    run_experiment(ExperimentConfig::paper(kind, 0xC0DE), costs, servers, tasks)
}

fn matmul_run(kind: HeuristicKind, gap: f64, n: usize, seed: u64) -> Vec<TaskRecord> {
    let costs = casgrid::workload::matmul::cost_table();
    let servers = casgrid::workload::testbed::set1_servers();
    let tasks = MetataskSpec {
        n_tasks: n,
        ..MetataskSpec::paper(gap)
    }
    .generate(seed);
    run_experiment(ExperimentConfig::paper(kind, 0xC0DE), costs, servers, tasks)
}

/// "MSF outperforms NetSolve's MCT in all the cases" — on sum-flow, at
/// both rates, on both workloads.
#[test]
fn msf_beats_mct_on_sumflow_everywhere() {
    for gap in [20.0, 15.0] {
        let mct = MetricSet::compute(&wastecpu_run(HeuristicKind::Mct, gap, 250, 1));
        let msf = MetricSet::compute(&wastecpu_run(HeuristicKind::Msf, gap, 250, 1));
        assert!(
            msf.sumflow < mct.sumflow,
            "waste-cpu gap {gap}: MSF {} !< MCT {}",
            msf.sumflow,
            mct.sumflow
        );
        let mct = MetricSet::compute(&matmul_run(HeuristicKind::Mct, gap, 250, 2));
        let msf = MetricSet::compute(&matmul_run(HeuristicKind::Msf, gap, 250, 2));
        assert!(
            msf.sumflow < mct.sumflow,
            "matmul gap {gap}: MSF {} !< MCT {}",
            msf.sumflow,
            mct.sumflow
        );
    }
}

/// The sharded twin of the headline claim: every §5.3 ordering asserted
/// in this file transfers verbatim to the federation, because a paper
/// run (exhaustive selector) routed through shards — skyline merge on —
/// is bit-identical to the single agent. Asserted here on the MSF-vs-MCT
/// sum-flow claim plus the record equality that carries the rest.
#[test]
fn paper_claims_survive_the_federation() {
    let costs = casgrid::workload::wastecpu::cost_table();
    let servers = casgrid::workload::testbed::set2_servers();
    let tasks = MetataskSpec {
        n_tasks: 250,
        ..MetataskSpec::paper(15.0)
    }
    .generate(1);
    let sharded = |kind: HeuristicKind| {
        run_experiment(
            ExperimentConfig::paper(kind, 0xC0DE).with_shards(Sharding::Federated { shards: 2 }),
            costs.clone(),
            servers.clone(),
            tasks.clone(),
        )
    };
    let mct = sharded(HeuristicKind::Mct);
    let msf = sharded(HeuristicKind::Msf);
    assert!(
        MetricSet::compute(&msf).sumflow < MetricSet::compute(&mct).sumflow,
        "sharded MSF must still beat sharded MCT on sum-flow"
    );
    let single = run_experiment(
        ExperimentConfig::paper(HeuristicKind::Msf, 0xC0DE),
        costs.clone(),
        servers.clone(),
        tasks,
    );
    assert_eq!(
        msf, single,
        "the federation must reproduce the paper run exactly"
    );
}

/// "The number of tasks that finish sooner than if scheduled with MCT is
/// always very high" — a strict majority for MSF and MP at the high rate.
#[test]
fn majority_of_tasks_finish_sooner_than_mct() {
    let n = 250;
    let mct = wastecpu_run(HeuristicKind::Mct, 15.0, n, 3);
    for kind in [HeuristicKind::Msf, HeuristicKind::Mp] {
        let h = wastecpu_run(kind, 15.0, n, 3);
        let sooner = finish_sooner_count(&h, &mct);
        assert!(
            sooner > n / 2,
            "{:?}: only {sooner}/{n} finish sooner",
            kind
        );
    }
}

/// "MP is always the best on the max-stretch" — among the four paper
/// heuristics at the high rate.
#[test]
fn mp_wins_maxstretch_at_high_rate() {
    let stretches: Vec<(HeuristicKind, f64)> = HeuristicKind::PAPER
        .iter()
        .map(|&k| {
            let m = MetricSet::compute(&wastecpu_run(k, 15.0, 250, 4));
            (k, m.maxstretch)
        })
        .collect();
    let mp = stretches
        .iter()
        .find(|(k, _)| *k == HeuristicKind::Mp)
        .unwrap()
        .1;
    for (k, s) in &stretches {
        assert!(
            mp <= s * 1.05,
            "MP max-stretch {mp} should be best; {k:?} has {s}"
        );
    }
}

/// Makespan is rate-bound: no heuristic degrades it meaningfully (§5.3:
/// "we cannot expect at the very outset a big difference between two
/// heuristics on that metric").
#[test]
fn makespan_within_two_percent_across_heuristics() {
    let makespans: Vec<f64> = HeuristicKind::PAPER
        .iter()
        .map(|&k| MetricSet::compute(&wastecpu_run(k, 20.0, 250, 5)).makespan)
        .collect();
    let min = makespans.iter().cloned().fold(f64::MAX, f64::min);
    let max = makespans.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.05, "makespans spread too far: {makespans:?}");
}

/// Table 6's completion story: with the memory model on, the high-rate
/// matmul metatask completes fully under MCT (fault-tolerant retries) and
/// loses tasks under HMCT (no retries), while MP loses fewer than HMCT.
#[test]
fn memory_crunch_reproduces_completion_ordering() {
    // Dense arrivals + big memory needs; shrink the gap to stress memory
    // within a 300-task run.
    let mct = MetricSet::compute(&matmul_run(HeuristicKind::Mct, 10.0, 300, 6));
    let hmct = MetricSet::compute(&matmul_run(HeuristicKind::Hmct, 10.0, 300, 6));
    let mp = MetricSet::compute(&matmul_run(HeuristicKind::Mp, 10.0, 300, 6));
    assert!(
        mct.completed > hmct.completed,
        "retrying MCT ({}) must complete more than non-retrying HMCT ({})",
        mct.completed,
        hmct.completed
    );
    assert!(
        mp.completed >= hmct.completed,
        "MP ({}) spreads load and should lose no more than HMCT ({})",
        mp.completed,
        hmct.completed
    );
    assert!(hmct.completed < 300, "the crunch must actually bite");
}

/// The waste-cpu workload never hits memory at all: every task of every
/// heuristic completes at both rates (Tables 7–8's "number of completed
/// tasks" rows).
#[test]
fn wastecpu_always_completes() {
    for gap in [20.0, 15.0] {
        for kind in HeuristicKind::PAPER {
            let m = MetricSet::compute(&wastecpu_run(kind, gap, 200, 7));
            assert_eq!(m.completed, 200, "{kind:?} at gap {gap}");
        }
    }
}

/// Stretch is well-defined and ≥ 1 for every completed task in the
/// noise-free model (the fair-share model can only slow tasks down; with
/// speed noise a task can beat its nominal cost slightly, so this
/// invariant is asserted on the ideal configuration).
#[test]
fn stretch_at_least_one_without_noise() {
    let costs = casgrid::workload::wastecpu::cost_table();
    let servers = casgrid::workload::testbed::set2_servers();
    let tasks = MetataskSpec {
        n_tasks: 200,
        ..MetataskSpec::paper(15.0)
    }
    .generate(8);
    let recs = run_experiment(
        ExperimentConfig::ideal(HeuristicKind::Msf, 8),
        costs,
        servers,
        tasks,
    );
    for r in &recs {
        if let Some(s) = r.stretch() {
            assert!(s >= 1.0 - 1e-9, "task {} has stretch {s} < 1", r.task);
        }
    }
}
